#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "hw/perf.hpp"
#include "support/histogram.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/string_utils.hpp"

namespace htvm {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::Unsupported("no ternary kernels");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
  EXPECT_EQ(s.ToString(), "UNSUPPORTED: no ternary kernels");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(MathUtils, CeilDivAndAlign) {
  EXPECT_EQ(CeilDiv(10, 4), 3);
  EXPECT_EQ(CeilDiv(12, 4), 3);
  EXPECT_EQ(CeilDiv(1, 16), 1);
  EXPECT_EQ(AlignUp(17, 16), 32);
  EXPECT_EQ(AlignUp(16, 16), 16);
  EXPECT_EQ(AlignUp(0, 16), 0);
  EXPECT_EQ(AlignDown(17, 16), 16);
}

TEST(MathUtils, SaturateToInt8) {
  EXPECT_EQ(SaturateToInt8(300), 127);
  EXPECT_EQ(SaturateToInt8(-300), -128);
  EXPECT_EQ(SaturateToInt8(5), 5);
  EXPECT_EQ(SaturateToInt8Relu(-5), 0);
  EXPECT_EQ(SaturateToInt8Relu(200), 127);
}

TEST(MathUtils, RoundingRightShift) {
  // round-to-nearest, ties toward +infinity (add-round-then-shift)
  EXPECT_EQ(RoundingRightShift(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(RoundingRightShift(4, 1), 2);
  EXPECT_EQ(RoundingRightShift(-5, 1), -2);  // -2.5 -> -2
  EXPECT_EQ(RoundingRightShift(-6, 1), -3);
  EXPECT_EQ(RoundingRightShift(-1, 4), 0);
  EXPECT_EQ(RoundingRightShift(100, 0), 100);
  EXPECT_EQ(RoundingRightShift(255, 4), 16);
}

TEST(MathUtils, Divisors) {
  EXPECT_EQ(Divisors(12), (std::vector<i64>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(Divisors(1), (std::vector<i64>{1}));
  EXPECT_EQ(Divisors(7), (std::vector<i64>{1, 7}));
}

TEST(MathUtils, TileCandidatesSmallDimIsExhaustive) {
  const auto c = TileCandidates(8, 16);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.front(), 1);
  EXPECT_EQ(c.back(), 8);
}

TEST(MathUtils, TileCandidatesLargeDimIncludesDivisorsAndSteps) {
  const auto c = TileCandidates(96, 16);
  // divisors of 96 and multiples of 16 up to 96
  for (i64 v : {1, 2, 3, 32, 48, 96, 16, 80}) {
    EXPECT_NE(std::find(c.begin(), c.end(), v), c.end()) << v;
  }
  // sorted unique
  for (size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const i64 v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, TernaryProducesAllThreeValues) {
  Rng rng(9);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.Ternary() + 1];
  EXPECT_GT(counts[0], 500);
  EXPECT_GT(counts[1], 500);
  EXPECT_GT(counts[2], 500);
}

TEST(StringUtils, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtils, JoinAndVec) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(IntVecToString({1, 2, 3}), "[1, 2, 3]");
}

TEST(StringUtils, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(256 * 1024), "256.0 kB");
}

// --------------------------------------------------------- LatencyHistogram

TEST(Histogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  // Percentiles of an empty histogram are 0, not garbage or a crash.
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 0.0) << "p" << p;
  }
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.Record(123.4);
  EXPECT_EQ(h.count(), 1);
  // With one sample the bucket bound is clamped to the exact value, so
  // every percentile — including p99 — is that sample.
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 123.4) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 123.4);
}

TEST(Histogram, PercentileIsMonotoneAndBounded) {
  LatencyHistogram h;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    h.Record(static_cast<double>(rng.UniformInt(1, 100000)));
  }
  double prev = h.Percentile(0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p" << p;
    EXPECT_GE(cur, h.min());
    EXPECT_LE(cur, h.max());
    prev = cur;
  }
}

TEST(Histogram, OverflowValuesLandInTopBucketWithExactExtremes) {
  // Values beyond the i64 range would be UB in llround; the bucketed value
  // clamps while min/max/sum stay exact.
  LatencyHistogram h;
  h.Record(1.0);
  h.Record(1e300);
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_TRUE(std::isinf(h.max()));
  // Percentiles stay within [min, max] and monotone even with the extreme
  // recordings present.
  EXPECT_GE(h.Percentile(50.0), h.min());
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), h.max());
  EXPECT_LE(h.Percentile(50.0), h.Percentile(99.0));
}

TEST(Histogram, NegativeAndNanClampToZero) {
  LatencyHistogram h;
  h.Record(-5.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, MergeMatchesSequentialRecording) {
  LatencyHistogram a, b, all;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>(rng.UniformInt(1, 10000));
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), all.Percentile(p)) << "p" << p;
  }
}

TEST(Histogram, MergeWithEmptySidesIsIdentity) {
  LatencyHistogram h, empty;
  h.Record(7.0);
  h.Merge(empty);  // right identity
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  LatencyHistogram target;
  target.Merge(h);  // left identity
  EXPECT_EQ(target.count(), 1);
  EXPECT_DOUBLE_EQ(target.min(), 7.0);
  EXPECT_DOUBLE_EQ(target.max(), 7.0);
}

// --------------------------------------------------- hw::RunProfile merging

hw::KernelPerf MakeKernel(const std::string& name, i64 cycles, i64 tiles) {
  hw::KernelPerf k;
  k.name = name;
  k.target = "digital";
  k.macs = cycles * 8;
  k.peak_cycles = cycles / 2;
  k.full_cycles = cycles;
  k.compute_cycles = cycles / 2;
  k.act_dma_cycles = cycles / 4;
  k.overhead_cycles = cycles - cycles / 2 - cycles / 4;
  k.tiles = tiles;
  return k;
}

TEST(RunProfile, AccumulateMatchesByNameAndSumsCounters) {
  hw::RunProfile base;
  base.kernels = {MakeKernel("conv#0", 1000, 4), MakeKernel("dense#1", 200, 1)};
  hw::RunProfile other;
  other.kernels = {MakeKernel("conv#0", 500, 2)};
  base.Accumulate(other);
  ASSERT_EQ(base.kernels.size(), 2u);
  EXPECT_EQ(base.kernels[0].full_cycles, 1500);
  EXPECT_EQ(base.kernels[0].macs, 1500 * 8);
  EXPECT_EQ(base.kernels[0].tiles, 6);
  EXPECT_EQ(base.kernels[1].full_cycles, 200);  // untouched
  EXPECT_EQ(base.TotalFullCycles(), 1700);
}

TEST(RunProfile, AccumulateAppendsUnknownKernels) {
  hw::RunProfile base;
  base.kernels = {MakeKernel("conv#0", 1000, 4)};
  hw::RunProfile other;
  other.kernels = {MakeKernel("add#2", 50, 1)};
  base.Accumulate(other);
  ASSERT_EQ(base.kernels.size(), 2u);
  EXPECT_EQ(base.kernels[1].name, "add#2");
  EXPECT_EQ(base.kernels[1].full_cycles, 50);
}

TEST(RunProfile, AccumulateEmptyIsIdentityBothWays) {
  hw::RunProfile base;
  base.kernels = {MakeKernel("conv#0", 1000, 4)};
  const i64 before = base.TotalFullCycles();
  base.Accumulate(hw::RunProfile{});
  EXPECT_EQ(base.TotalFullCycles(), before);
  hw::RunProfile empty;
  empty.Accumulate(base);
  ASSERT_EQ(empty.kernels.size(), 1u);
  EXPECT_EQ(empty.TotalFullCycles(), before);
}

TEST(RunProfile, AccumulateIsAssociativeAcrossInstances) {
  // Fleet semantics: per-SoC profiles merged in any grouping give the same
  // totals.
  const hw::RunProfile a{{MakeKernel("conv#0", 100, 1)}};
  const hw::RunProfile b{{MakeKernel("conv#0", 200, 2)}};
  const hw::RunProfile c{{MakeKernel("dense#1", 300, 1)}};
  hw::RunProfile left;
  left.Accumulate(a);
  left.Accumulate(b);
  left.Accumulate(c);
  hw::RunProfile right;
  hw::RunProfile bc;
  bc.Accumulate(b);
  bc.Accumulate(c);
  right.Accumulate(a);
  right.Accumulate(bc);
  EXPECT_EQ(left.TotalFullCycles(), right.TotalFullCycles());
  EXPECT_EQ(left.TotalMacs(), right.TotalMacs());
  ASSERT_EQ(left.kernels.size(), right.kernels.size());
  for (size_t i = 0; i < left.kernels.size(); ++i) {
    EXPECT_EQ(left.kernels[i].name, right.kernels[i].name);
    EXPECT_EQ(left.kernels[i].full_cycles, right.kernels[i].full_cycles);
  }
}

}  // namespace
}  // namespace htvm

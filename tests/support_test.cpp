#include <gtest/gtest.h>

#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/string_utils.hpp"

namespace htvm {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::Unsupported("no ternary kernels");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
  EXPECT_EQ(s.ToString(), "UNSUPPORTED: no ternary kernels");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(MathUtils, CeilDivAndAlign) {
  EXPECT_EQ(CeilDiv(10, 4), 3);
  EXPECT_EQ(CeilDiv(12, 4), 3);
  EXPECT_EQ(CeilDiv(1, 16), 1);
  EXPECT_EQ(AlignUp(17, 16), 32);
  EXPECT_EQ(AlignUp(16, 16), 16);
  EXPECT_EQ(AlignUp(0, 16), 0);
  EXPECT_EQ(AlignDown(17, 16), 16);
}

TEST(MathUtils, SaturateToInt8) {
  EXPECT_EQ(SaturateToInt8(300), 127);
  EXPECT_EQ(SaturateToInt8(-300), -128);
  EXPECT_EQ(SaturateToInt8(5), 5);
  EXPECT_EQ(SaturateToInt8Relu(-5), 0);
  EXPECT_EQ(SaturateToInt8Relu(200), 127);
}

TEST(MathUtils, RoundingRightShift) {
  // round-to-nearest, ties toward +infinity (add-round-then-shift)
  EXPECT_EQ(RoundingRightShift(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(RoundingRightShift(4, 1), 2);
  EXPECT_EQ(RoundingRightShift(-5, 1), -2);  // -2.5 -> -2
  EXPECT_EQ(RoundingRightShift(-6, 1), -3);
  EXPECT_EQ(RoundingRightShift(-1, 4), 0);
  EXPECT_EQ(RoundingRightShift(100, 0), 100);
  EXPECT_EQ(RoundingRightShift(255, 4), 16);
}

TEST(MathUtils, Divisors) {
  EXPECT_EQ(Divisors(12), (std::vector<i64>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(Divisors(1), (std::vector<i64>{1}));
  EXPECT_EQ(Divisors(7), (std::vector<i64>{1, 7}));
}

TEST(MathUtils, TileCandidatesSmallDimIsExhaustive) {
  const auto c = TileCandidates(8, 16);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.front(), 1);
  EXPECT_EQ(c.back(), 8);
}

TEST(MathUtils, TileCandidatesLargeDimIncludesDivisorsAndSteps) {
  const auto c = TileCandidates(96, 16);
  // divisors of 96 and multiples of 16 up to 96
  for (i64 v : {1, 2, 3, 32, 48, 96, 16, 80}) {
    EXPECT_NE(std::find(c.begin(), c.end(), v), c.end()) << v;
  }
  // sorted unique
  for (size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const i64 v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, TernaryProducesAllThreeValues) {
  Rng rng(9);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.Ternary() + 1];
  EXPECT_GT(counts[0], 500);
  EXPECT_GT(counts[1], 500);
  EXPECT_GT(counts[2], 500);
}

TEST(StringUtils, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtils, JoinAndVec) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(IntVecToString({1, 2, 3}), "[1, 2, 3]");
}

TEST(StringUtils, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(256 * 1024), "256.0 kB");
}

}  // namespace
}  // namespace htvm

// Cross-SoC differential test battery for the parameterized SoC families
// (hw/soc.hpp).
//
// Three kinds of guarantees:
//   1. Registry sanity — the built-in family is registered, fingerprints
//      are pairwise distinct (including a same-geometry twin), duplicates
//      and unknown names fail with typed statuses.
//   2. Differential — the default "diana" SoC reproduces the pre-refactor
//      single-SoC artifacts byte-identically, pinned by
//      tests/golden/soc/diana_reference.txt (regenerate intentional changes
//      with `./soc_family_test --update-golden` and commit the diff). Every
//      registered SoC compiles the full MLPerf Tiny suite plus layer-zoo
//      graphs deterministically, and distinct SoCs produce distinct
//      artifacts and distinct cache keys for the same graph.
//   3. Monotonicity — shrinking L1 (diana -> diana-l1half) strictly
//      tightens every DORY tile bound: solutions respect the halved budget
//      and never beat the full-L1 objective.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cache/artifact_serialize.hpp"
#include "cache/cache_key.hpp"
#include "compiler/pipeline.hpp"
#include "dory/tiler.hpp"
#include "hw/soc.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"
#include "support/string_utils.hpp"
#include "vm/hab.hpp"

#ifndef HTVM_GOLDEN_DIR
#error "HTVM_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace htvm {
namespace {

bool g_update_golden = false;

// The six built-in family members, in registry (sorted) order.
const char* kFamilies[] = {"diana",          "diana-l1half", "diana-l2x2",
                           "diana-noanalog", "diana-pe32",   "diana-scalar"};

compiler::CompileOptions ConfigOptions(const std::string& config) {
  if (config == "tvm") return compiler::CompileOptions::PlainTvm();
  if (config == "digital") return compiler::CompileOptions::DigitalOnly();
  if (config == "analog") return compiler::CompileOptions::AnalogOnly();
  return compiler::CompileOptions{};
}

models::PrecisionPolicy ConfigPolicy(const std::string& config) {
  if (config == "tvm" || config == "digital") {
    return models::PrecisionPolicy::kInt8;
  }
  if (config == "analog") return models::PrecisionPolicy::kTernary;
  return models::PrecisionPolicy::kMixed;
}

// Wall-clock-scrubbed artifact hash: equal iff the artifacts are
// semantically byte-identical (kernels, schedules, memory plan, hw config).
u64 DiffHash(const compiler::Artifact& a) {
  const std::string diff = cache::SerializeArtifactForDiff(a);
  return vm::HabChecksum(reinterpret_cast<const u8*>(diff.data()),
                         diff.size());
}

compiler::Artifact MustCompile(const Graph& g,
                               const compiler::CompileOptions& opt) {
  auto artifact = compiler::HtvmCompiler{opt}.Compile(g);
  HTVM_CHECK_MSG(artifact.ok(), "compile failed");
  return std::move(*artifact);
}

struct GoldenCase {
  std::string name;
  Graph graph;
  compiler::CompileOptions options;
};

// The exact case list the pre-refactor golden file was generated from:
// MLPerf Tiny x every deployment config, the Fig. 4 layer zoo, and two
// non-conv zoo graphs.
std::vector<GoldenCase> GoldenCases() {
  std::vector<GoldenCase> cases;
  for (const auto& model : models::MlperfTinySuite()) {
    for (const std::string config : {"mixed", "digital", "analog", "tvm"}) {
      GoldenCase c;
      c.name = model.name + std::string("/") + config;
      c.graph = model.build(ConfigPolicy(config));
      c.options = ConfigOptions(config);
      cases.push_back(std::move(c));
    }
  }
  int i = 0;
  for (const auto& p : models::Fig4Layers()) {
    GoldenCase c;
    c.name = "fig4-layer" + std::to_string(i++) + "/mixed";
    c.graph = models::MakeConvLayerGraph(p);
    cases.push_back(std::move(c));
  }
  {
    GoldenCase c;
    c.name = "zoo-dense/mixed";
    c.graph = models::MakeDenseLayerGraph(256, 64);
    cases.push_back(std::move(c));
  }
  {
    GoldenCase c;
    c.name = "zoo-add/mixed";
    c.graph = models::MakeAddLayerGraph(16, 16, 16);
    cases.push_back(std::move(c));
  }
  return cases;
}

std::string GoldenLine(const std::string& name,
                       const compiler::Artifact& artifact) {
  return StrFormat(
      "%s hash=%016llx kernels=%zu full_cycles=%lld arena=%lld "
      "code=%lld weight=%lld",
      name.c_str(), static_cast<unsigned long long>(DiffHash(artifact)),
      artifact.kernels.size(),
      static_cast<long long>(artifact.TotalFullCycles()),
      static_cast<long long>(artifact.memory_plan.arena_bytes),
      static_cast<long long>(artifact.size.code_bytes),
      static_cast<long long>(artifact.size.weight_bytes));
}

// --- 1. registry sanity ----------------------------------------------------

TEST(SocRegistry, BuiltInFamilyIsRegistered) {
  const std::vector<std::string> names = hw::SocRegistry::Global().Names();
  for (const char* family : kFamilies) {
    EXPECT_TRUE(hw::SocRegistry::Global().Has(family)) << family;
    auto desc = hw::FindSoc(family);
    ASSERT_TRUE(desc.ok()) << family;
    EXPECT_EQ(desc->name, family);
  }
  // Sorted, and at least the built-ins (other tests may register more).
  ASSERT_GE(names.size(), 6u);
  for (size_t i = 1; i < names.size(); ++i) EXPECT_LT(names[i - 1], names[i]);
}

TEST(SocRegistry, FingerprintsArePairwiseDistinct) {
  std::map<u64, std::string> seen;
  for (const char* family : kFamilies) {
    const u64 fp = hw::FindSoc(family)->Fingerprint();
    auto [it, inserted] = seen.emplace(fp, family);
    EXPECT_TRUE(inserted) << family << " collides with " << it->second;
  }
  // A twin with byte-identical geometry but a different name must still
  // fingerprint differently: identity is part of the key.
  hw::SocDescription twin = hw::SocDescription::Diana();
  twin.name = "diana-twin";
  EXPECT_NE(twin.Fingerprint(), hw::SocDescription::Diana().Fingerprint());
}

TEST(SocRegistry, DuplicateAndEmptyRegistrationsFail) {
  const Status dup =
      hw::SocRegistry::Global().Register(hw::SocDescription::Diana());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);

  hw::SocDescription unnamed;
  unnamed.name.clear();
  const Status empty = hw::SocRegistry::Global().Register(unnamed);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
}

TEST(SocRegistry, UnknownNameIsTypedAndListsFamilies) {
  auto missing = hw::FindSoc("diana-mythical");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The message enumerates what IS registered, so a CLI typo is fixable
  // from the error alone.
  EXPECT_NE(missing.status().ToString().find("diana-l1half"),
            std::string::npos);
}

// --- 2. differential battery -----------------------------------------------

TEST(SocFamily, DefaultDianaMatchesPreRefactorGolden) {
  const std::string path =
      std::string(HTVM_GOLDEN_DIR) + "/soc/diana_reference.txt";
  std::string report =
      "# Pre-refactor (PR 6) DIANA artifact reference: per case, the FNV-1a\n"
      "# 64 hash of cache::SerializeArtifactForDiff plus summary fields.\n"
      "# Regenerate with: soc_family_test --update-golden\n";
  std::vector<std::string> lines;
  for (const GoldenCase& c : GoldenCases()) {
    // Default options: CompileOptions::soc is SocDescription::Diana().
    const compiler::Artifact artifact = MustCompile(c.graph, c.options);
    EXPECT_EQ(artifact.soc_name, "diana") << c.name;
    lines.push_back(GoldenLine(c.name, artifact));
    report += lines.back() + "\n";
  }
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << report;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path
                         << " (run with --update-golden to generate)";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line[0] != '#') golden.push_back(line);
  }
  ASSERT_EQ(lines.size(), golden.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], golden[i])
        << "default-SoC artifact drifted from the pre-refactor reference; "
           "the SocDescription refactor must be byte-neutral for diana";
  }
}

TEST(SocFamily, EverySocCompilesTheSuiteDeterministically) {
  // MLPerf Tiny (mixed) + layer zoo x every built-in SoC: compilation
  // succeeds, fits L2, and repeating the compile reproduces the identical
  // artifact. Also records per-SoC hashes for the distinctness check below.
  std::vector<std::pair<std::string, Graph>> graphs;
  for (const auto& model : models::MlperfTinySuite()) {
    graphs.emplace_back(model.name,
                        model.build(models::PrecisionPolicy::kMixed));
  }
  models::ConvLayerParams conv;
  conv.c = 32;
  conv.k = 32;
  conv.iy = conv.ix = 32;
  graphs.emplace_back("zoo-conv", models::MakeConvLayerGraph(conv));
  graphs.emplace_back("zoo-dense", models::MakeDenseLayerGraph(256, 64));
  graphs.emplace_back("zoo-add", models::MakeAddLayerGraph(16, 16, 16));

  for (const auto& [name, graph] : graphs) {
    std::map<u64, std::string> hash_to_soc;
    for (const char* family : kFamilies) {
      compiler::CompileOptions options;
      options.soc = *hw::FindSoc(family);
      const compiler::Artifact a = MustCompile(graph, options);
      const compiler::Artifact b = MustCompile(graph, options);
      EXPECT_EQ(a.soc_name, family);
      EXPECT_TRUE(a.memory_plan.fits) << name << " on " << family;
      EXPECT_EQ(DiffHash(a), DiffHash(b))
          << name << " on " << family << " is nondeterministic";
      hash_to_soc.emplace(DiffHash(a), family);
    }
    // Every SoC's artifact differs (the hw config is part of the artifact,
    // and diana-noanalog additionally changes dispatch).
    EXPECT_EQ(hash_to_soc.size(), 6u)
        << name << ": two SoCs produced byte-identical artifacts";
  }
}

TEST(SocFamily, CacheKeysNeverCollideAcrossSocs) {
  // Regression for the cache-poisoning bug: identical graph + identical
  // options except the SoC must produce distinct cache keys — including a
  // twin whose geometry equals diana's exactly (only the name differs).
  const Graph g = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  std::map<std::string, std::string> key_to_soc;
  for (const char* family : kFamilies) {
    compiler::CompileOptions options;
    options.soc = *hw::FindSoc(family);
    const auto key = cache::MakeCacheKey(g, options).ToString();
    auto [it, inserted] = key_to_soc.emplace(key, family);
    EXPECT_TRUE(inserted) << family << " shares a cache key with "
                          << it->second;
  }
  compiler::CompileOptions twin_options;
  twin_options.soc = hw::SocDescription::Diana();
  twin_options.soc.name = "diana-twin";
  const auto twin_key = cache::MakeCacheKey(g, twin_options).ToString();
  EXPECT_EQ(key_to_soc.count(twin_key), 0u)
      << "a renamed SoC with identical geometry reused another SoC's entry";
}

// --- 3. monotonicity -------------------------------------------------------

TEST(SocFamily, ShrinkingL1StrictlyTightensEveryTileBound) {
  const hw::DianaConfig full = hw::FindSoc("diana")->config;
  const hw::DianaConfig half = hw::FindSoc("diana-l1half")->config;
  ASSERT_EQ(half.l1_bytes * 2, full.l1_bytes);

  int binding_layers = 0;
  int layer = 0;
  for (const auto& p : models::Fig4Layers()) {
    const dory::AccelLayerSpec spec = models::MakeConvSpec(p);
    auto sol_full =
        dory::SolveTiling(spec, full, dory::AccelTarget::kDigital, {});
    auto sol_half =
        dory::SolveTiling(spec, half, dory::AccelTarget::kDigital, {});
    ASSERT_TRUE(sol_full.ok()) << "fig4-layer" << layer;
    ASSERT_TRUE(sol_half.ok()) << "fig4-layer" << layer;
    // The tightened bound binds strictly for both solutions (Eq. 2 is a
    // strict inequality), and the halved bound really is half.
    EXPECT_LT(sol_full->l1_bytes, full.l1_bytes) << "fig4-layer" << layer;
    EXPECT_LT(sol_half->l1_bytes, half.l1_bytes) << "fig4-layer" << layer;
    // A full-L1 solution that exceeds the halved budget must be replaced
    // by a finer tiling under diana-l1half.
    if (sol_full->l1_bytes >= half.l1_bytes) {
      ++binding_layers;
      EXPECT_GT(sol_half->TileCount(), sol_full->TileCount())
          << "fig4-layer" << layer;
    }
    ++layer;
  }
  // The Fig. 4 zoo exists to stress tiling; the halved budget must
  // actually bind somewhere or this test proves nothing.
  EXPECT_GT(binding_layers, 0);
}

// --- registry extension (last: pollutes the global registry) ---------------

TEST(SocRegistry, NewFamilyMemberIsImmediatelyUsable) {
  hw::SocDescription custom = hw::SocDescription::Diana();
  custom.name = "diana-test-l1quarter";
  custom.config.l1_bytes = hw::DianaConfig::Default().l1_bytes / 4;
  ASSERT_TRUE(hw::SocRegistry::Global().Register(custom).ok());
  ASSERT_TRUE(hw::FindSoc("diana-test-l1quarter").ok());

  compiler::CompileOptions options;
  options.soc = *hw::FindSoc("diana-test-l1quarter");
  const Graph g = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  const compiler::Artifact a = MustCompile(g, options);
  EXPECT_EQ(a.soc_name, "diana-test-l1quarter");
  EXPECT_EQ(a.hw_config.l1_bytes, custom.config.l1_bytes);
}

}  // namespace
}  // namespace htvm

// Custom main for the --update-golden escape hatch (same contract as
// codegen_golden_test).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      htvm::g_update_golden = true;
    }
  }
  const char* env = std::getenv("HTVM_UPDATE_GOLDEN");
  if (env != nullptr && std::string(env) == "1") {
    htvm::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}

// Per-output-channel requantization (real quantized models carry
// per-channel scales; DIANA's output stage applies them per channel).
#include <gtest/gtest.h>

#include "compiler/emit.hpp"
#include "compiler/pipeline.hpp"
#include "ir/builder.hpp"
#include "nn/interpreter.hpp"
#include "runtime/verify.hpp"
#include "tensor/quantize.hpp"

namespace htvm {
namespace {

Graph PerChannelConvGraph(u64 seed, i64 c = 8, i64 k = 16, i64 hw = 12) {
  GraphBuilder b(seed);
  NodeId x = b.Input("x", Shape{1, c, hw, hw});
  ConvSpec spec;
  spec.out_channels = k;
  spec.per_channel_requant = true;
  spec = WithSamePadding(spec, hw, hw);
  return b.Finish(b.ConvBlock(x, spec, "c"));
}

TEST(PerChannel, RequantizeTensorAppliesPerChannelShifts) {
  Tensor acc = Tensor::FromInt32(Shape{1, 2, 1, 2}, {256, 256, 256, 256});
  RequantParams p;
  p.relu = false;
  p.channel_shifts = {4, 6};
  Tensor out = RequantizeTensor(acc, p);
  EXPECT_EQ(out.GetFlat(0), 16);  // 256 >> 4
  EXPECT_EQ(out.GetFlat(1), 16);
  EXPECT_EQ(out.GetFlat(2), 4);   // 256 >> 6
  EXPECT_EQ(out.GetFlat(3), 4);
}

TEST(PerChannel, RightShiftKernelBroadcasts) {
  Tensor data = Tensor::FromInt32(Shape{1, 2, 1, 2}, {64, 64, 64, 64});
  Tensor shift = Tensor::FromInt32(Shape{2}, {1, 3});
  auto out = nn::RightShift(data, shift);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetFlat(0), 32);
  EXPECT_EQ(out->GetFlat(3), 8);
}

TEST(PerChannel, OpInferenceAcceptsChannelVector) {
  Graph g;
  NodeId x = g.AddInput("x", {Shape{1, 4, 3, 3}, DType::kInt32});
  NodeId sh = g.AddConstant(Tensor::FromInt32(Shape{4}, {1, 2, 3, 4}));
  auto ok = g.TryAddOp("right_shift", {x, sh});
  EXPECT_TRUE(ok.ok());
  NodeId bad = g.AddConstant(Tensor::FromInt32(Shape{3}, {1, 2, 3}));
  auto rejected = g.TryAddOp("right_shift", {x, bad});
  EXPECT_FALSE(rejected.ok());
}

TEST(PerChannel, DispatchedToDigitalAndBitExact) {
  Graph net = PerChannelConvGraph(21);
  auto art = compiler::HtvmCompiler{compiler::CompileOptions::DigitalOnly()}
                 .Compile(net);
  ASSERT_TRUE(art.ok()) << art.status().ToString();
  ASSERT_EQ(art->kernels.size(), 1u);
  EXPECT_EQ(art->kernels[0].target, "digital");
  EXPECT_TRUE(art->kernels[0].schedule->spec.requant.per_channel());

  Rng rng(5);
  const Tensor input = Tensor::Random(Shape{1, 8, 12, 12}, DType::kInt8, rng);
  auto report = runtime::VerifyArtifact(*art, net, std::vector<Tensor>{input});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->bit_exact);
}

TEST(PerChannel, TiledSimulationBitExact) {
  Graph net = PerChannelConvGraph(22, 16, 24, 20);
  compiler::CompileOptions opt = compiler::CompileOptions::DigitalOnly();
  opt.tiler.l1_budget_bytes = 3 * 1024;  // force k/c/spatial tiling
  auto art = compiler::HtvmCompiler{opt}.Compile(net);
  ASSERT_TRUE(art.ok());
  ASSERT_GT(art->kernels[0].schedule->steps.size(), 1u);
  Rng rng(6);
  const Tensor input = Tensor::Random(Shape{1, 16, 20, 20}, DType::kInt8, rng);
  auto report = runtime::VerifyArtifact(*art, net, std::vector<Tensor>{input},
                                        /*simulate_tiles=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bit_exact);
}

TEST(PerChannel, CpuEmissionCarriesShiftTable) {
  Graph net = PerChannelConvGraph(23);
  auto art =
      compiler::HtvmCompiler{compiler::CompileOptions::PlainTvm()}.Compile(
          net);
  ASSERT_TRUE(art.ok());
  auto emitted = compiler::EmitArtifactC(*art, "pcq");
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();
  const std::string& c = emitted->files.at("pcq.c");
  EXPECT_NE(c.find("_sh["), std::string::npos);
}

TEST(PerChannel, AccelEmissionReportsUnsupported) {
  Graph net = PerChannelConvGraph(24);
  auto art = compiler::HtvmCompiler{compiler::CompileOptions::DigitalOnly()}
                 .Compile(net);
  ASSERT_TRUE(art.ok());
  auto emitted = compiler::EmitArtifactC(*art, "pcq");
  EXPECT_FALSE(emitted.ok());
  EXPECT_EQ(emitted.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace htvm

// End-to-end tests of the htvmc CLI binary (invoked as a subprocess; ctest
// runs tests from build/tests, so the tool sits at ../tools/htvmc).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/builder.hpp"
#include "ir/serialize.hpp"

namespace htvm {
namespace {

const char* kTool = "../tools/htvmc";
const char* kServeTool = "../tools/htvm-serve";
const char* kRunTool = "../tools/htvm-run";

bool BinaryExists(const char* path) {
  std::ifstream f(path);
  return f.good();
}

bool ToolExists() { return BinaryExists(kTool); }

int RunBinary(const char* tool, const std::string& args,
              std::string* out_path, const char* capture_name) {
  const std::string capture = ::testing::TempDir() + capture_name;
  if (out_path != nullptr) *out_path = capture;
  const std::string cmd =
      std::string(tool) + " " + args + " > " + capture + " 2>&1";
  return std::system(cmd.c_str());
}

int RunTool(const std::string& args, std::string* out_path = nullptr) {
  return RunBinary(kTool, args, out_path, "/htvmc_out.txt");
}

int RunServe(const std::string& args, std::string* out_path = nullptr,
             const char* capture_name = "/htvm_serve_out.txt") {
  return RunBinary(kServeTool, args, out_path, capture_name);
}

int RunRun(const std::string& args, std::string* out_path = nullptr) {
  return RunBinary(kRunTool, args, out_path, "/htvm_run_out.txt");
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Cli, HelpSucceeds) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_EQ(RunTool("--help", &out), 0);
  EXPECT_NE(ReadAll(out).find("--config"), std::string::npos);
}

TEST(Cli, NoInputFails) {
  if (!ToolExists()) GTEST_SKIP();
  EXPECT_NE(RunTool("--config mixed"), 0);
}

TEST(Cli, UnknownFlagFails) {
  if (!ToolExists()) GTEST_SKIP();
  EXPECT_NE(RunTool("--model resnet --frobnicate"), 0);
}

TEST(Cli, CompilesBuiltinModelWithReport) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  ASSERT_EQ(RunTool("--model resnet --config mixed --report --energy", &out), 0);
  const std::string text = ReadAll(out);
  EXPECT_NE(text.find("kernels"), std::string::npos);
  EXPECT_NE(text.find("diana.conv2d"), std::string::npos);
  EXPECT_NE(text.find("TOPS/W"), std::string::npos);
  EXPECT_NE(text.find("analog"), std::string::npos);
}

TEST(Cli, CompilesSerializedGraph) {
  if (!ToolExists()) GTEST_SKIP();
  GraphBuilder b(3);
  NodeId x = b.Input("x", Shape{1, 8, 16, 16});
  ConvSpec spec;
  spec.out_channels = 16;
  spec = WithSamePadding(spec, 16, 16);
  Graph g = b.Finish(b.ConvBlock(x, spec, "c"));
  const std::string path = ::testing::TempDir() + "/cli_net.htvm";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  std::string out;
  ASSERT_EQ(RunTool("--graph " + path + " --config digital --report", &out), 0);
  EXPECT_NE(ReadAll(out).find("digital"), std::string::npos);
}

TEST(Cli, EmitsCompilableSources) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string dir = ::testing::TempDir() + "/cli_emit";
  ASSERT_EQ(RunTool("--model toyadmos --config digital --emit-dir " + dir), 0);
  std::ifstream f(dir + "/toyadmos.c");
  EXPECT_TRUE(f.good());
}

TEST(Cli, UnknownModelFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model nosuchnet --config mixed", &out), 0);
  EXPECT_NE(ReadAll(out).find("unknown model 'nosuchnet'"), std::string::npos);
}

TEST(Cli, BadConfigFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model resnet --config warp", &out), 0);
  EXPECT_NE(ReadAll(out).find("unknown --config 'warp'"), std::string::npos);
}

TEST(Cli, UnreadableGraphFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--graph /nonexistent/dir/net.htvm --config digital",
                    &out),
            0);
  EXPECT_NE(ReadAll(out).find("cannot open /nonexistent/dir/net.htvm"),
            std::string::npos);
}

TEST(Cli, MissingFlagValueFails) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model", &out), 0);
  EXPECT_NE(ReadAll(out).find("--model needs a value"), std::string::npos);
}

TEST(Cli, BadL1ValueFails) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model resnet --l1 0", &out), 0);
  EXPECT_NE(ReadAll(out).find("bad --l1 value"), std::string::npos);
}

TEST(Cli, L1OverrideChangesTiling) {
  if (!ToolExists()) GTEST_SKIP();
  std::string big_out, small_out;
  ASSERT_EQ(RunTool("--model resnet --config digital --report", &big_out), 0);
  const std::string big = ReadAll(big_out);
  ASSERT_EQ(RunTool("--model resnet --config digital --l1 4 --report",
                &small_out),
            0);
  const std::string small = ReadAll(small_out);
  EXPECT_NE(big, small);  // tighter L1 -> different tile counts/latency
}

TEST(Cli, PrintPassTimesListsEveryPass) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  ASSERT_EQ(RunTool("--model resnet --config mixed --print-pass-times", &out),
            0);
  const std::string text = ReadAll(out);
  EXPECT_NE(text.find("pass timeline:"), std::string::npos);
  for (const char* pass :
       {"AbsorbPadding", "ConstantFold", "PartitionGraph",
        "InsertAnalogInputClamps", "LowerToKernels", "CompileKernels",
        "ComputeBinarySize", "PlanL2Memory", "FinalizeArtifact", "total"}) {
    EXPECT_NE(text.find(pass), std::string::npos) << "missing " << pass;
  }
}

TEST(Cli, DumpIrWritesDeterministicDumps) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string dir_a = ::testing::TempDir() + "/cli_ir_a";
  const std::string dir_b = ::testing::TempDir() + "/cli_ir_b";
  std::string out;
  ASSERT_EQ(RunTool("--model dscnn --config mixed --dump-ir " + dir_a, &out),
            0);
  EXPECT_NE(ReadAll(out).find("dumped per-pass IR to " + dir_a),
            std::string::npos);
  ASSERT_EQ(RunTool("--model dscnn --config mixed --dump-ir " + dir_b), 0);
  // Spot-check the first and last graph stage; both text and DOT forms are
  // deterministic, so reruns must produce byte-identical files.
  for (const char* name :
       {"/00_input.txt", "/03_PartitionGraph.dot", "/05_LowerToKernels.txt"}) {
    const std::string a = ReadAll(dir_a + name);
    EXPECT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, ReadAll(dir_b + name)) << name;
  }
}

TEST(Cli, PrintPassTimesMarksSkippedPasses) {
  if (!ToolExists()) GTEST_SKIP();
  // The already-folded resnet gives AbsorbPadding and ConstantFold nothing
  // to do; the early-exit satellite marks them in the timeline.
  std::string out;
  ASSERT_EQ(RunTool("--model resnet --config mixed --print-pass-times", &out),
            0);
  EXPECT_NE(ReadAll(out).find("skipped"), std::string::npos);
}

TEST(Cli, DumpIrFilterRestrictsToAroundPass) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string dir = ::testing::TempDir() + "/cli_ir_filter";
  ASSERT_EQ(RunTool("--model resnet --config mixed --dump-ir " + dir +
                    " --dump-ir-filter PartitionGraph"),
            0);
  // Only the graphs around the named pass: the one entering it (the
  // preceding stage's output — dumped even though ConstantFold itself was
  // skipped) and the one it produced.
  EXPECT_FALSE(ReadAll(dir + "/02_ConstantFold.txt").empty());
  EXPECT_FALSE(ReadAll(dir + "/03_PartitionGraph.dot").empty());
  EXPECT_TRUE(ReadAll(dir + "/00_input.txt").empty());
  EXPECT_TRUE(ReadAll(dir + "/05_LowerToKernels.txt").empty());
}

TEST(Cli, CacheDirSecondRunHits) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string dir = ::testing::TempDir() + "/cli_cache_dir";
  std::filesystem::remove_all(dir);  // stale entries from a previous run
  std::string out;
  ASSERT_EQ(
      RunTool("--model dscnn --config mixed --cache-dir " + dir, &out), 0);
  const std::string first = ReadAll(out);
  EXPECT_NE(first.find("cache: miss"), std::string::npos);
  // A second process on the same dir loads the persisted artifact and
  // reports the identical summary line.
  ASSERT_EQ(
      RunTool("--model dscnn --config mixed --cache-dir " + dir, &out), 0);
  const std::string second = ReadAll(out);
  EXPECT_NE(second.find("cache: hit"), std::string::npos);
  const auto summary = [](const std::string& s) {
    const size_t pos = s.find(" kernels | ");
    return pos == std::string::npos
               ? std::string()
               : s.substr(s.rfind('\n', pos) + 1,
                          s.find('\n', pos) - s.rfind('\n', pos));
  };
  EXPECT_FALSE(summary(first).empty());
  EXPECT_EQ(summary(first), summary(second));
}

TEST(Cli, UnwritableDumpDirFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string blocker = ::testing::TempDir() + "/cli_ir_blocker";
  std::ofstream(blocker) << "not a directory";
  std::string out;
  EXPECT_NE(RunTool("--model resnet --config mixed --dump-ir " + blocker,
                    &out),
            0);
  EXPECT_NE(ReadAll(out).find("cannot write IR dump"), std::string::npos);
}

TEST(ServeCli, HelpSucceeds) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  std::string out;
  EXPECT_EQ(RunServe("--help", &out), 0);
  EXPECT_NE(ReadAll(out).find("--fleet"), std::string::npos);
}

TEST(ServeCli, NoModelFails) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  EXPECT_NE(RunServe("--qps 100"), 0);
}

TEST(ServeCli, UnknownModelFails) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunServe("--model nosuchnet", &out), 0);
  EXPECT_NE(ReadAll(out).find("unknown model 'nosuchnet'"),
            std::string::npos);
}

TEST(ServeCli, PrintsJsonMetricsDeterministically) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  // Scaled-down version of the acceptance command (the full 2-second trace
  // is exercised by bench_serving); verifies every metric family is present
  // and that stdout is byte-identical across runs of the same seed.
  const std::string args =
      "--model resnet --config mixed --qps 200 --fleet 4 --duration-s 0.1 "
      "--seed 7 --verify";
  std::string out_a, out_b;
  ASSERT_EQ(RunServe(args, &out_a, "/serve_a.txt"), 0);
  ASSERT_EQ(RunServe(args, &out_b, "/serve_b.txt"), 0);
  // The compile-cache block reports measured pipeline time
  // (miss_cost_ns/saved_ns); those are wall-clock, not simulation, so they
  // are the one legitimately nondeterministic metric — zero them before the
  // byte comparison.
  const auto scrub = [](std::string s) {
    for (const char* field : {"\"miss_cost_ns\": ", "\"saved_ns\": "}) {
      size_t pos = 0;
      while ((pos = s.find(field, pos)) != std::string::npos) {
        pos += std::strlen(field);
        size_t end = pos;
        while (end < s.size() && std::isdigit(s[end]) != 0) ++end;
        s.replace(pos, end - pos, "0");
      }
    }
    return s;
  };
  const std::string a = ReadAll(out_a);
  EXPECT_EQ(scrub(a), scrub(ReadAll(out_b)));
  for (const char* key :
       {"\"throughput_rps\"", "\"p50\"", "\"p95\"", "\"p99\"",
        "\"rejected\"", "\"utilization\"", "\"output_mismatches\": 0",
        "\"cache\"", "\"compiles\": 1", "\"enabled\": true"}) {
    EXPECT_NE(a.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(Cli, BadSocFailsListingFamilies) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model resnet --soc not-a-soc", &out), 0);
  const std::string text = ReadAll(out);
  EXPECT_NE(text.find("not-a-soc"), std::string::npos);
  EXPECT_NE(text.find("diana-l1half"), std::string::npos);
}

TEST(Cli, SocFlagIsRecordedAndEnforcedByRunner) {
  if (!ToolExists() || !BinaryExists(kRunTool)) GTEST_SKIP();
  const std::string hab = ::testing::TempDir() + "/cli_soc.hab";
  std::string out;
  ASSERT_EQ(RunTool("--model dscnn --config mixed --soc diana-l1half "
                    "--emit-artifact " + hab, &out), 0);
  EXPECT_NE(ReadAll(out).find("soc: diana-l1half"), std::string::npos);

  // Matching runner deployment executes; --meta names the recorded SoC.
  EXPECT_EQ(RunRun(hab + " --soc diana-l1half", &out), 0);
  ASSERT_EQ(RunRun(hab + " --meta", &out), 0);
  EXPECT_NE(ReadAll(out).find("soc: diana-l1half"), std::string::npos);

  // A mismatched deployment refuses with a typed error naming both SoCs.
  EXPECT_NE(RunRun(hab + " --soc diana", &out), 0);
  const std::string mismatch = ReadAll(out);
  EXPECT_NE(mismatch.find("UNSUPPORTED"), std::string::npos);
  EXPECT_NE(mismatch.find("diana-l1half"), std::string::npos);
  EXPECT_NE(mismatch.find("'diana'"), std::string::npos);

  // Default-SoC artifacts load as diana and pass a diana deployment check.
  const std::string diana_hab = ::testing::TempDir() + "/cli_diana.hab";
  ASSERT_EQ(RunTool("--model dscnn --config mixed --emit-artifact " +
                    diana_hab), 0);
  EXPECT_EQ(RunRun(diana_hab + " --soc diana", &out), 0);
}

TEST(ServeCli, HeterogeneousFleetServesWithPerKindMetrics) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  std::string out;
  ASSERT_EQ(RunServe("--model dscnn --config mixed --qps 100 "
                     "--duration-s 0.1 --seed 7 --verify "
                     "--fleet diana:1,diana-pe32:1",
                     &out, "/serve_hetero.txt"), 0);
  const std::string text = ReadAll(out);
  // One compile per distinct SoC kind, each reported per kind.
  EXPECT_NE(text.find("\"placement\": \"model-aware\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"diana\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"diana-pe32\""), std::string::npos);
  EXPECT_NE(text.find("\"cache_by_kind\""), std::string::npos);
  EXPECT_NE(text.find("\"output_mismatches\": 0"), std::string::npos);
}

TEST(ServeCli, BadFleetSpecFails) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunServe("--model dscnn --fleet diana:1,bogus:2", &out,
                     "/serve_badfleet.txt"), 0);
  EXPECT_NE(ReadAll(out).find("bogus"), std::string::npos);
  EXPECT_NE(RunServe("--model dscnn --placement sometimes", &out,
                     "/serve_badplace.txt"), 0);
}

}  // namespace
}  // namespace htvm

// End-to-end tests of the htvmc CLI binary (invoked as a subprocess; ctest
// runs tests from build/tests, so the tool sits at ../tools/htvmc).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ir/builder.hpp"
#include "ir/serialize.hpp"

namespace htvm {
namespace {

const char* kTool = "../tools/htvmc";
const char* kServeTool = "../tools/htvm-serve";

bool BinaryExists(const char* path) {
  std::ifstream f(path);
  return f.good();
}

bool ToolExists() { return BinaryExists(kTool); }

int RunBinary(const char* tool, const std::string& args,
              std::string* out_path, const char* capture_name) {
  const std::string capture = ::testing::TempDir() + capture_name;
  if (out_path != nullptr) *out_path = capture;
  const std::string cmd =
      std::string(tool) + " " + args + " > " + capture + " 2>&1";
  return std::system(cmd.c_str());
}

int RunTool(const std::string& args, std::string* out_path = nullptr) {
  return RunBinary(kTool, args, out_path, "/htvmc_out.txt");
}

int RunServe(const std::string& args, std::string* out_path = nullptr,
             const char* capture_name = "/htvm_serve_out.txt") {
  return RunBinary(kServeTool, args, out_path, capture_name);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Cli, HelpSucceeds) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_EQ(RunTool("--help", &out), 0);
  EXPECT_NE(ReadAll(out).find("--config"), std::string::npos);
}

TEST(Cli, NoInputFails) {
  if (!ToolExists()) GTEST_SKIP();
  EXPECT_NE(RunTool("--config mixed"), 0);
}

TEST(Cli, UnknownFlagFails) {
  if (!ToolExists()) GTEST_SKIP();
  EXPECT_NE(RunTool("--model resnet --frobnicate"), 0);
}

TEST(Cli, CompilesBuiltinModelWithReport) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  ASSERT_EQ(RunTool("--model resnet --config mixed --report --energy", &out), 0);
  const std::string text = ReadAll(out);
  EXPECT_NE(text.find("kernels"), std::string::npos);
  EXPECT_NE(text.find("diana.conv2d"), std::string::npos);
  EXPECT_NE(text.find("TOPS/W"), std::string::npos);
  EXPECT_NE(text.find("analog"), std::string::npos);
}

TEST(Cli, CompilesSerializedGraph) {
  if (!ToolExists()) GTEST_SKIP();
  GraphBuilder b(3);
  NodeId x = b.Input("x", Shape{1, 8, 16, 16});
  ConvSpec spec;
  spec.out_channels = 16;
  spec = WithSamePadding(spec, 16, 16);
  Graph g = b.Finish(b.ConvBlock(x, spec, "c"));
  const std::string path = ::testing::TempDir() + "/cli_net.htvm";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  std::string out;
  ASSERT_EQ(RunTool("--graph " + path + " --config digital --report", &out), 0);
  EXPECT_NE(ReadAll(out).find("digital"), std::string::npos);
}

TEST(Cli, EmitsCompilableSources) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string dir = ::testing::TempDir() + "/cli_emit";
  ASSERT_EQ(RunTool("--model toyadmos --config digital --emit-dir " + dir), 0);
  std::ifstream f(dir + "/toyadmos.c");
  EXPECT_TRUE(f.good());
}

TEST(Cli, UnknownModelFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model nosuchnet --config mixed", &out), 0);
  EXPECT_NE(ReadAll(out).find("unknown model 'nosuchnet'"), std::string::npos);
}

TEST(Cli, BadConfigFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model resnet --config warp", &out), 0);
  EXPECT_NE(ReadAll(out).find("unknown --config 'warp'"), std::string::npos);
}

TEST(Cli, UnreadableGraphFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--graph /nonexistent/dir/net.htvm --config digital",
                    &out),
            0);
  EXPECT_NE(ReadAll(out).find("cannot open /nonexistent/dir/net.htvm"),
            std::string::npos);
}

TEST(Cli, MissingFlagValueFails) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model", &out), 0);
  EXPECT_NE(ReadAll(out).find("--model needs a value"), std::string::npos);
}

TEST(Cli, BadL1ValueFails) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunTool("--model resnet --l1 0", &out), 0);
  EXPECT_NE(ReadAll(out).find("bad --l1 value"), std::string::npos);
}

TEST(Cli, L1OverrideChangesTiling) {
  if (!ToolExists()) GTEST_SKIP();
  std::string big_out, small_out;
  ASSERT_EQ(RunTool("--model resnet --config digital --report", &big_out), 0);
  const std::string big = ReadAll(big_out);
  ASSERT_EQ(RunTool("--model resnet --config digital --l1 4 --report",
                &small_out),
            0);
  const std::string small = ReadAll(small_out);
  EXPECT_NE(big, small);  // tighter L1 -> different tile counts/latency
}

TEST(Cli, PrintPassTimesListsEveryPass) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  ASSERT_EQ(RunTool("--model resnet --config mixed --print-pass-times", &out),
            0);
  const std::string text = ReadAll(out);
  EXPECT_NE(text.find("pass timeline:"), std::string::npos);
  for (const char* pass :
       {"AbsorbPadding", "ConstantFold", "PartitionGraph",
        "InsertAnalogInputClamps", "LowerToKernels", "CompileKernels",
        "ComputeBinarySize", "PlanL2Memory", "FinalizeArtifact", "total"}) {
    EXPECT_NE(text.find(pass), std::string::npos) << "missing " << pass;
  }
}

TEST(Cli, DumpIrWritesDeterministicDumps) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string dir_a = ::testing::TempDir() + "/cli_ir_a";
  const std::string dir_b = ::testing::TempDir() + "/cli_ir_b";
  std::string out;
  ASSERT_EQ(RunTool("--model dscnn --config mixed --dump-ir " + dir_a, &out),
            0);
  EXPECT_NE(ReadAll(out).find("dumped per-pass IR to " + dir_a),
            std::string::npos);
  ASSERT_EQ(RunTool("--model dscnn --config mixed --dump-ir " + dir_b), 0);
  // Spot-check the first and last graph stage; both text and DOT forms are
  // deterministic, so reruns must produce byte-identical files.
  for (const char* name :
       {"/00_input.txt", "/03_PartitionGraph.dot", "/05_LowerToKernels.txt"}) {
    const std::string a = ReadAll(dir_a + name);
    EXPECT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, ReadAll(dir_b + name)) << name;
  }
}

TEST(Cli, UnwritableDumpDirFailsWithMessage) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string blocker = ::testing::TempDir() + "/cli_ir_blocker";
  std::ofstream(blocker) << "not a directory";
  std::string out;
  EXPECT_NE(RunTool("--model resnet --config mixed --dump-ir " + blocker,
                    &out),
            0);
  EXPECT_NE(ReadAll(out).find("cannot write IR dump"), std::string::npos);
}

TEST(ServeCli, HelpSucceeds) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  std::string out;
  EXPECT_EQ(RunServe("--help", &out), 0);
  EXPECT_NE(ReadAll(out).find("--fleet"), std::string::npos);
}

TEST(ServeCli, NoModelFails) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  EXPECT_NE(RunServe("--qps 100"), 0);
}

TEST(ServeCli, UnknownModelFails) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  std::string out;
  EXPECT_NE(RunServe("--model nosuchnet", &out), 0);
  EXPECT_NE(ReadAll(out).find("unknown model 'nosuchnet'"),
            std::string::npos);
}

TEST(ServeCli, PrintsJsonMetricsDeterministically) {
  if (!BinaryExists(kServeTool)) GTEST_SKIP();
  // Scaled-down version of the acceptance command (the full 2-second trace
  // is exercised by bench_serving); verifies every metric family is present
  // and that stdout is byte-identical across runs of the same seed.
  const std::string args =
      "--model resnet --config mixed --qps 200 --fleet 4 --duration-s 0.1 "
      "--seed 7 --verify";
  std::string out_a, out_b;
  ASSERT_EQ(RunServe(args, &out_a, "/serve_a.txt"), 0);
  ASSERT_EQ(RunServe(args, &out_b, "/serve_b.txt"), 0);
  const std::string a = ReadAll(out_a);
  EXPECT_EQ(a, ReadAll(out_b));
  for (const char* key :
       {"\"throughput_rps\"", "\"p50\"", "\"p95\"", "\"p99\"",
        "\"rejected\"", "\"utilization\"", "\"output_mismatches\": 0"}) {
    EXPECT_NE(a.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace htvm

// End-to-end tests of the htvmc CLI binary (invoked as a subprocess; ctest
// runs tests from build/tests, so the tool sits at ../tools/htvmc).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ir/builder.hpp"
#include "ir/serialize.hpp"

namespace htvm {
namespace {

const char* kTool = "../tools/htvmc";

bool ToolExists() {
  std::ifstream f(kTool);
  return f.good();
}

int RunTool(const std::string& args, std::string* out_path = nullptr) {
  const std::string capture = ::testing::TempDir() + "/htvmc_out.txt";
  if (out_path != nullptr) *out_path = capture;
  const std::string cmd =
      std::string(kTool) + " " + args + " > " + capture + " 2>&1";
  return std::system(cmd.c_str());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Cli, HelpSucceeds) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  EXPECT_EQ(RunTool("--help", &out), 0);
  EXPECT_NE(ReadAll(out).find("--config"), std::string::npos);
}

TEST(Cli, NoInputFails) {
  if (!ToolExists()) GTEST_SKIP();
  EXPECT_NE(RunTool("--config mixed"), 0);
}

TEST(Cli, UnknownFlagFails) {
  if (!ToolExists()) GTEST_SKIP();
  EXPECT_NE(RunTool("--model resnet --frobnicate"), 0);
}

TEST(Cli, CompilesBuiltinModelWithReport) {
  if (!ToolExists()) GTEST_SKIP();
  std::string out;
  ASSERT_EQ(RunTool("--model resnet --config mixed --report --energy", &out), 0);
  const std::string text = ReadAll(out);
  EXPECT_NE(text.find("kernels"), std::string::npos);
  EXPECT_NE(text.find("diana.conv2d"), std::string::npos);
  EXPECT_NE(text.find("TOPS/W"), std::string::npos);
  EXPECT_NE(text.find("analog"), std::string::npos);
}

TEST(Cli, CompilesSerializedGraph) {
  if (!ToolExists()) GTEST_SKIP();
  GraphBuilder b(3);
  NodeId x = b.Input("x", Shape{1, 8, 16, 16});
  ConvSpec spec;
  spec.out_channels = 16;
  spec = WithSamePadding(spec, 16, 16);
  Graph g = b.Finish(b.ConvBlock(x, spec, "c"));
  const std::string path = ::testing::TempDir() + "/cli_net.htvm";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  std::string out;
  ASSERT_EQ(RunTool("--graph " + path + " --config digital --report", &out), 0);
  EXPECT_NE(ReadAll(out).find("digital"), std::string::npos);
}

TEST(Cli, EmitsCompilableSources) {
  if (!ToolExists()) GTEST_SKIP();
  const std::string dir = ::testing::TempDir() + "/cli_emit";
  ASSERT_EQ(RunTool("--model toyadmos --config digital --emit-dir " + dir), 0);
  std::ifstream f(dir + "/toyadmos.c");
  EXPECT_TRUE(f.good());
}

TEST(Cli, L1OverrideChangesTiling) {
  if (!ToolExists()) GTEST_SKIP();
  std::string big_out, small_out;
  ASSERT_EQ(RunTool("--model resnet --config digital --report", &big_out), 0);
  const std::string big = ReadAll(big_out);
  ASSERT_EQ(RunTool("--model resnet --config digital --l1 4 --report",
                &small_out),
            0);
  const std::string small = ReadAll(small_out);
  EXPECT_NE(big, small);  // tighter L1 -> different tile counts/latency
}

}  // namespace
}  // namespace htvm

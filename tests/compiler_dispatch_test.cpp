#include <gtest/gtest.h>

#include "compiler/accel_spec.hpp"
#include "compiler/dispatch.hpp"
#include "models/layer_zoo.hpp"
#include "pattern/rewriter.hpp"
#include "pattern/std_patterns.hpp"

namespace htvm::compiler {
namespace {

const hw::DianaConfig kCfg = hw::DianaConfig::Default();

dory::AccelLayerSpec ConvSpecOf(i64 c, i64 k, DType wdtype,
                                bool dw = false) {
  models::ConvLayerParams p;
  p.c = c;
  p.k = dw ? c : k;
  p.depthwise = dw;
  p.weight_dtype = wdtype;
  return models::MakeConvSpec(p);
}

TEST(AccelRules, DigitalTakesInt8NotTernary) {
  EXPECT_TRUE(DigitalSupports(ConvSpecOf(16, 16, DType::kInt8), kCfg));
  EXPECT_FALSE(DigitalSupports(ConvSpecOf(16, 16, DType::kTernary), kCfg));
}

TEST(AccelRules, AnalogTakesTernaryNotInt8) {
  EXPECT_TRUE(AnalogSupports(ConvSpecOf(16, 16, DType::kTernary), kCfg));
  EXPECT_FALSE(AnalogSupports(ConvSpecOf(16, 16, DType::kInt8), kCfg));
}

TEST(AccelRules, AnalogRejectsDepthwise) {
  EXPECT_FALSE(AnalogSupports(
      ConvSpecOf(16, 16, DType::kTernary, /*dw=*/true), kCfg));
  EXPECT_TRUE(DigitalSupports(
      ConvSpecOf(16, 16, DType::kInt8, /*dw=*/true), kCfg));
}

TEST(AccelRules, AnalogRejectsPatchOverMacroRows) {
  // C*kh*kw = 256*9 = 2304 > 1152 rows.
  EXPECT_FALSE(AnalogSupports(ConvSpecOf(256, 16, DType::kTernary), kCfg));
  // 128*9 = 1152 exactly fits.
  EXPECT_TRUE(AnalogSupports(ConvSpecOf(128, 16, DType::kTernary), kCfg));
}

TEST(AccelRules, DigitalRejectsHugeStrides) {
  auto spec = ConvSpecOf(16, 16, DType::kInt8);
  spec.sy = spec.sx = 5;
  EXPECT_FALSE(DigitalSupports(spec, kCfg));
}

TEST(SpecFromMatch, ReadsConvGeometry) {
  models::ConvLayerParams p;
  p.c = 8;
  p.k = 24;
  p.iy = 20;
  p.ix = 12;
  p.stride = 2;
  Graph g = models::MakeConvLayerGraph(p);
  MatchResult m;
  ASSERT_TRUE(MatchAt(g, g.outputs()[0], ConvChainPattern(), g.UseCounts(),
                      &m));
  auto spec = SpecFromMatch(g, m);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, dory::LayerKind::kConv2d);
  EXPECT_EQ(spec->c, 8);
  EXPECT_EQ(spec->k, 24);
  EXPECT_EQ(spec->iy, 20);
  EXPECT_EQ(spec->ix, 12);
  EXPECT_EQ(spec->sy, 2);
  EXPECT_EQ(spec->oy, 10);
  EXPECT_EQ(spec->ox, 6);
}

TEST(Dispatch, RoutesByWeightDtype) {
  const DispatchOptions both;
  const auto rules = MakeDianaDispatchRules(both, kCfg, {});

  models::ConvLayerParams p8;
  p8.c = 16;
  p8.k = 16;
  Graph g8 = models::MakeConvLayerGraph(p8);
  Graph p8g = PartitionGraph(g8, rules);
  std::string target8;
  for (const Node& n : p8g.nodes()) {
    if (n.kind == NodeKind::kComposite) target8 = n.attrs.GetString("target");
  }
  EXPECT_EQ(target8, "digital");

  models::ConvLayerParams pt = p8;
  pt.weight_dtype = DType::kTernary;
  Graph gt = models::MakeConvLayerGraph(pt);
  Graph ptg = PartitionGraph(gt, rules);
  std::string target_t;
  for (const Node& n : ptg.nodes()) {
    if (n.kind == NodeKind::kComposite) target_t = n.attrs.GetString("target");
  }
  EXPECT_EQ(target_t, "analog");
}

TEST(Dispatch, DisabledAcceleratorFallsToCpu) {
  DispatchOptions digital_off;
  digital_off.enable_digital = false;
  digital_off.enable_analog = false;
  const auto rules = MakeDianaDispatchRules(digital_off, kCfg, {});
  models::ConvLayerParams p;
  Graph g = models::MakeConvLayerGraph(p);
  Graph part = PartitionGraph(g, rules);
  for (const Node& n : part.nodes()) {
    EXPECT_NE(n.kind, NodeKind::kComposite);
  }
}

TEST(Dispatch, TernaryWithoutAnalogStaysOnCpu) {
  // Ternary weights and analog disabled: digital has no ternary kernels,
  // TVM has none either -> stays unfused for the CPU path... which also has
  // no ternary kernels in the real flow; here the reference interpreter
  // executes it (footnote 1 of the paper: TVM does not support generating
  // ternary kernels — the dispatcher must therefore never send ternary to
  // digital).
  DispatchOptions analog_off;
  analog_off.enable_analog = false;
  const auto rules = MakeDianaDispatchRules(analog_off, kCfg, {});
  models::ConvLayerParams p;
  p.weight_dtype = DType::kTernary;
  Graph g = models::MakeConvLayerGraph(p);
  Graph part = PartitionGraph(g, rules);
  for (const Node& n : part.nodes()) {
    EXPECT_NE(n.kind, NodeKind::kComposite);
  }
}

TEST(Dispatch, AddGoesDigital) {
  Graph g = models::MakeAddLayerGraph(16, 8, 8);
  const auto rules = MakeDianaDispatchRules({}, kCfg, {});
  Graph part = PartitionGraph(g, rules);
  std::string target;
  for (const Node& n : part.nodes()) {
    if (n.kind == NodeKind::kComposite) target = n.attrs.GetString("target");
  }
  EXPECT_EQ(target, "digital");
}

TEST(Dispatch, DenseGoesDigitalOrAnalogByDtype) {
  const auto rules = MakeDianaDispatchRules({}, kCfg, {});
  Graph g8 = models::MakeDenseLayerGraph(64, 32, DType::kInt8);
  Graph gt = models::MakeDenseLayerGraph(64, 32, DType::kTernary);
  std::string t8, tt;
  for (const Node& n : PartitionGraph(g8, rules).nodes()) {
    if (n.kind == NodeKind::kComposite) t8 = n.attrs.GetString("target");
  }
  for (const Node& n : PartitionGraph(gt, rules).nodes()) {
    if (n.kind == NodeKind::kComposite) tt = n.attrs.GetString("target");
  }
  EXPECT_EQ(t8, "digital");
  EXPECT_EQ(tt, "analog");
}

}  // namespace
}  // namespace htvm::compiler

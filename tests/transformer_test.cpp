// Transformer workload battery (docs/transformer_workload.md).
//
// Pins the attention subsystem end-to-end:
//   1. Differential — the tiny encoder transformer is bit-exact against
//      the reference nn interpreter on every registered SoC and every
//      deployment config, with and without tile-level simulation.
//   2. Partitioning — diana offloads whole MHSA blocks (diana.mhsa) to the
//      digital array; the reduced SoCs (no analog array / scalar host)
//      fall back to per-op CPU kernels without error.
//   3. Determinism — artifacts are byte-identical across compile-thread
//      counts, and outputs are bit-exact across tile-schedule strategies.
//   4. Numerics — int8 softmax at extreme magnitudes, layernorm on
//      zero-variance rows, matmul tiling under a pathological L1 budget.
//   5. Deployment — the emitted CPU-only C compiles with the host `cc` and
//      reproduces the interpreter bit-for-bit (integer layernorm, GELU
//      LUT, generic attention-body emission).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cache/artifact_serialize.hpp"
#include "compiler/emit.hpp"
#include "compiler/pipeline.hpp"
#include "hw/soc.hpp"
#include "models/transformer.hpp"
#include "nn/interpreter.hpp"
#include "nn/kernels.hpp"
#include "runtime/verify.hpp"
#include "support/rng.hpp"

namespace htvm {
namespace {

const char* kFamilies[] = {"diana",          "diana-l1half", "diana-l2x2",
                           "diana-noanalog", "diana-pe32",   "diana-scalar"};

compiler::Artifact MustCompile(const Graph& g,
                               const compiler::CompileOptions& opt) {
  auto artifact = compiler::HtvmCompiler{opt}.Compile(g);
  HTVM_CHECK_MSG(artifact.ok(), "compile failed");
  return std::move(*artifact);
}

Tensor TransformerInput(u64 seed) {
  Rng rng(seed);
  return Tensor::Random(Shape{16, 32}, DType::kInt8, rng);
}

bool HasKernelWithPrefix(const compiler::Artifact& art,
                         const std::string& prefix) {
  for (const auto& k : art.kernels) {
    if (k.name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// --- 1. cross-SoC differential ---------------------------------------------

TEST(TransformerDifferential, BitExactOnEverySocAndConfig) {
  const Graph net = models::BuildTinyTransformerDefault();
  const Tensor input = TransformerInput(42);
  for (const char* family : kFamilies) {
    auto soc = hw::FindSoc(family);
    ASSERT_TRUE(soc.ok()) << family;
    for (const bool plain_tvm : {false, true}) {
      compiler::CompileOptions opt =
          plain_tvm ? compiler::CompileOptions::PlainTvm()
                    : compiler::CompileOptions{};
      opt.soc = *soc;
      const auto art = MustCompile(net, opt);
      for (const bool simulate_tiles : {false, true}) {
        auto report = runtime::VerifyArtifact(art, net, {&input, 1},
                                              simulate_tiles);
        ASSERT_TRUE(report.ok())
            << family << " tvm=" << plain_tvm << ": "
            << report.status().ToString();
        EXPECT_TRUE(report->bit_exact)
            << family << " tvm=" << plain_tvm
            << " simulate_tiles=" << simulate_tiles << ": "
            << report->mismatched_elements << "/" << report->total_elements
            << " elements differ (max |diff| " << report->max_abs_diff
            << ")";
      }
    }
  }
}

TEST(TransformerDifferential, DeeperModelBitExactOnDiana) {
  // A non-default geometry: 1 block, 4 heads, wider model dim.
  const Graph net = models::TinyTransformer(/*depth=*/1, /*heads=*/4,
                                            /*d_model=*/64, /*seq_len=*/8);
  Rng rng(7);
  const Tensor input = Tensor::Random(Shape{8, 64}, DType::kInt8, rng);
  const auto art = MustCompile(net, compiler::CompileOptions{});
  auto report = runtime::VerifyArtifact(art, net, {&input, 1},
                                        /*simulate_tiles=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bit_exact)
      << report->mismatched_elements << "/" << report->total_elements;
}

// --- 2. partitioning --------------------------------------------------------

TEST(TransformerPartitioning, MhsaBlocksLandOnDigitalArray) {
  const Graph net = models::BuildTinyTransformerDefault();
  const auto art = MustCompile(net, compiler::CompileOptions{});
  EXPECT_TRUE(HasKernelWithPrefix(art, "diana.mhsa"))
      << "whole-block attention offload missing from the dispatch table";
  EXPECT_TRUE(HasKernelWithPrefix(art, "diana.matmul"))
      << "FFN matmul chains should take the diana.matmul path";
  for (const auto& k : art.kernels) {
    if (k.name.rfind("diana.mhsa", 0) == 0) {
      EXPECT_GT(k.perf.macs, 0) << k.name;
      EXPECT_GT(k.perf.full_cycles, 0) << k.name;
    }
  }
}

TEST(TransformerPartitioning, ReducedSocsFallBackToPerOpCpu) {
  const Graph net = models::BuildTinyTransformerDefault();
  for (const char* family : {"diana-noanalog", "diana-scalar"}) {
    auto soc = hw::FindSoc(family);
    ASSERT_TRUE(soc.ok());
    compiler::CompileOptions opt;
    opt.soc = *soc;
    const auto art = MustCompile(net, opt);
    EXPECT_FALSE(HasKernelWithPrefix(art, "diana.mhsa")) << family;
    EXPECT_FALSE(HasKernelWithPrefix(art, "diana.matmul")) << family;
    // Attention still deploys: per-op matmul composites on the CPU path.
    EXPECT_TRUE(HasKernelWithPrefix(art, "tvm.matmul")) << family;
    const Tensor input = TransformerInput(42);
    auto report = runtime::VerifyArtifact(art, net, {&input, 1});
    ASSERT_TRUE(report.ok()) << family << ": " << report.status().ToString();
    EXPECT_TRUE(report->bit_exact) << family;
  }
}

// --- 3. determinism ---------------------------------------------------------

TEST(TransformerDeterminism, ArtifactIdenticalAcrossCompileThreads) {
  const Graph net = models::BuildTinyTransformerDefault();
  compiler::CompileOptions sequential;
  sequential.compile_threads = 1;
  compiler::CompileOptions parallel;
  parallel.compile_threads = 4;
  const auto a = MustCompile(net, sequential);
  const auto b = MustCompile(net, parallel);
  EXPECT_EQ(cache::SerializeArtifactForDiff(a),
            cache::SerializeArtifactForDiff(b));
}

TEST(TransformerDeterminism, OutputsBitExactAcrossScheduleStrategies) {
  const Graph net = models::BuildTinyTransformerDefault();
  const Tensor input = TransformerInput(123);
  auto ref = nn::RunGraph(net, std::vector<Tensor>{input});
  ASSERT_TRUE(ref.ok());
  for (const auto kind : {dory::ScheduleSearchKind::kHeuristic,
                          dory::ScheduleSearchKind::kBeam,
                          dory::ScheduleSearchKind::kEvolutionary}) {
    compiler::CompileOptions opt;
    opt.schedule_search.kind = kind;
    const auto art = MustCompile(net, opt);
    for (const bool simulate_tiles : {false, true}) {
      auto report = runtime::VerifyArtifact(art, net, {&input, 1},
                                            simulate_tiles);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->bit_exact)
          << "strategy " << static_cast<int>(kind)
          << " simulate_tiles=" << simulate_tiles;
    }
  }
}

// --- 4. numerical edge cases ------------------------------------------------

TEST(TransformerNumerics, SoftmaxStableAtInt8Extremes) {
  // Rows mixing the full int8 range must neither overflow nor produce
  // out-of-grid values; the winner takes (nearly) all of the 127 budget.
  Tensor in(Shape{2, 8}, DType::kInt8);
  const i64 row0[] = {127, -128, -128, -128, -128, -128, -128, -128};
  const i64 row1[] = {127, 127, -128, -128, 0, 64, -64, 127};
  for (i64 i = 0; i < 8; ++i) {
    in.SetFlat(i, row0[i]);
    in.SetFlat(8 + i, row1[i]);
  }
  auto out = nn::Softmax(in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (i64 i = 0; i < out->NumElements(); ++i) {
    EXPECT_GE(out->GetFlat(i), 0) << "element " << i;
    EXPECT_LE(out->GetFlat(i), 127) << "element " << i;
  }
  // Row 0: one dominant logit 255 levels above the rest.
  EXPECT_EQ(out->GetFlat(0), 127);
  for (i64 i = 1; i < 8; ++i) EXPECT_EQ(out->GetFlat(i), 0);
  // Row 1: the three tied maxima share the mass equally.
  EXPECT_EQ(out->GetFlat(8), out->GetFlat(9));
  EXPECT_EQ(out->GetFlat(8), out->GetFlat(15));
  EXPECT_GT(out->GetFlat(8), 30);
}

TEST(TransformerNumerics, LayerNormZeroVarianceRowsAreZero) {
  // Constant rows have zero variance; the +1 epsilon must keep the
  // division defined and map the row to exactly zero.
  Tensor in(Shape{3, 16}, DType::kInt8);
  for (i64 c = 0; c < 16; ++c) {
    in.SetFlat(c, 0);
    in.SetFlat(16 + c, 127);
    in.SetFlat(32 + c, -128);
  }
  auto out = nn::LayerNorm(in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (i64 i = 0; i < out->NumElements(); ++i) {
    EXPECT_EQ(out->GetFlat(i), 0) << "element " << i;
  }
}

TEST(TransformerNumerics, MatmulTilingExhaustsPathologicalL1) {
  dory::AccelLayerSpec spec;
  spec.kind = dory::LayerKind::kMatmul;
  spec.c = 64;
  spec.k = 64;
  spec.oy = spec.iy = 16;
  dory::TilerOptions options;
  // A double-buffered 1x1x1 tile set already needs 2 B of input plus a
  // 4 B partial sum; 4 B cannot hold even that.
  options.l1_budget_bytes = 4;
  const auto tiling =
      dory::SolveTiling(spec, hw::SocDescription::Diana().config,
                        dory::AccelTarget::kDigital, options);
  ASSERT_FALSE(tiling.ok());
  EXPECT_EQ(tiling.status().code(), StatusCode::kResourceExhausted)
      << tiling.status().ToString();
  // The compiler-level consequence: the dispatcher rejects the layer and
  // the whole model still compiles (CPU fallback), it does not error out.
  compiler::CompileOptions opt;
  opt.tiler.l1_budget_bytes = 4;
  const auto art = MustCompile(models::BuildTinyTransformerDefault(), opt);
  EXPECT_FALSE(HasKernelWithPrefix(art, "diana.mhsa"));
  EXPECT_FALSE(HasKernelWithPrefix(art, "diana.matmul"));
}

// --- 5. emitted-C deployment ------------------------------------------------

bool ToolAvailable(const char* cmd) {
  const std::string check = std::string("command -v ") + cmd + " > /dev/null";
  return std::system(check.c_str()) == 0;
}

TEST(TransformerDeployment, EmittedCpuCMatchesInterpreter) {
  if (!ToolAvailable("cc")) GTEST_SKIP() << "no host C compiler";
  const Graph net = models::BuildTinyTransformerDefault();
  const auto art = MustCompile(net, compiler::CompileOptions::PlainTvm());
  auto emitted = compiler::EmitArtifactC(art, "tfnet");
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();

  const Tensor input = TransformerInput(17);
  auto ref = nn::RunGraph(net, std::vector<Tensor>{input});
  ASSERT_TRUE(ref.ok());
  const Tensor& expected = ref.value()[0];

  const std::string dir = ::testing::TempDir() + "/htvm_emit_transformer";
  std::system(("mkdir -p " + dir).c_str());
  ASSERT_TRUE(emitted->WriteTo(dir).ok());
  {
    std::ofstream main_c(dir + "/main.c");
    main_c << "#include <stdio.h>\n#include \"tfnet.h\"\n";
    main_c << "static const signed char input[] = {";
    for (i64 i = 0; i < input.NumElements(); ++i) {
      main_c << input.GetFlat(i) << (i + 1 < input.NumElements() ? "," : "");
    }
    main_c << "};\nint main(void) {\n";
    main_c << "  signed char out[" << expected.NumElements() << "];\n";
    main_c << "  tfnet_run((const void*)input, out);\n";
    main_c << "  for (int i = 0; i < " << expected.NumElements()
           << "; ++i) printf(\"%d\\n\", (int)out[i]);\n  return 0;\n}\n";
  }
  const std::string bin = dir + "/tfnet_bin";
  // No -lm: the emitted helpers (layernorm, GELU LUT, softmax) must be
  // integer-only.
  const std::string compile_cmd = "cc -std=c11 -O1 -o " + bin + " " + dir +
                                  "/tfnet.c " + dir + "/main.c 2> " + dir +
                                  "/cc.log";
  ASSERT_EQ(std::system(compile_cmd.c_str()), 0)
      << "emitted C failed to compile; see " << dir << "/cc.log";
  const std::string out_file = dir + "/out.txt";
  ASSERT_EQ(std::system((bin + " > " + out_file).c_str()), 0);
  std::ifstream out_stream(out_file);
  for (i64 i = 0; i < expected.NumElements(); ++i) {
    int value = 9999;
    out_stream >> value;
    EXPECT_EQ(value, expected.GetFlat(i)) << "output element " << i;
  }
}

TEST(TransformerDeployment, EmittedAccelCCompiles) {
  if (!ToolAvailable("cc")) GTEST_SKIP() << "no host C compiler";
  const Graph net = models::BuildTinyTransformerDefault();
  const auto art = MustCompile(net, compiler::CompileOptions{});
  auto emitted = compiler::EmitArtifactC(art, "tfaccel");
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();
  const std::string dir = ::testing::TempDir() + "/htvm_emit_tf_accel";
  std::system(("mkdir -p " + dir).c_str());
  ASSERT_TRUE(emitted->WriteTo(dir).ok());
  const std::string cmd = "cc -std=c11 -O0 -c -o " + dir + "/tfaccel.o " +
                          dir + "/tfaccel.c 2> " + dir + "/cc.log";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "emitted accelerated C failed to compile; see " << dir << "/cc.log";
}

}  // namespace
}  // namespace htvm

// ir::StructuralHash — the graph half of the artifact-cache key.
//
// The contract (ir/structural_hash.hpp): NodeId numbering, insertion order
// and unreachable nodes never change the digest; any change the compiler
// can observe — op names, attrs, constant bytes, tensor types, node names,
// DAG sharing — always does. cache::OptionsFingerprint carries the same
// contract for CompileOptions: instrumentation knobs are excluded,
// artifact-affecting fields are not.
#include <gtest/gtest.h>

#include "cache/cache_key.hpp"
#include "ir/builder.hpp"
#include "ir/structural_hash.hpp"
#include "models/mlperf_tiny.hpp"

namespace htvm {
namespace {

using ir::Hash128;
using ir::StructuralHash;

// A small two-branch graph:  y = relu(conv(x, w)) + bias-add branch.
Graph MakeGraph(u64 weight_seed = 1) {
  Graph g;
  NodeId in = g.AddInput("x", {Shape{1, 3, 8, 8}, DType::kInt8});
  Rng rng(weight_seed);
  NodeId w = g.AddConstant(
      Tensor::Random(Shape{8, 3, 3, 3}, DType::kInt8, rng), "w");
  NodeId conv = g.AddOp("nn.conv2d", {in, w},
                        AttrMap{{"strides", std::vector<i64>{1, 1}},
                                {"padding", std::vector<i64>{1, 1, 1, 1}},
                                {"groups", i64{1}}});
  NodeId relu = g.AddOp("nn.relu", {conv});
  g.SetOutputs({relu});
  return g;
}

TEST(StructuralHash, DeterministicAcrossCalls) {
  const Graph g = MakeGraph();
  const Hash128 a = StructuralHash(g);
  const Hash128 b = StructuralHash(g);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToHex().size(), 32u);
}

TEST(StructuralHash, InsertionOrderDoesNotMatter) {
  // Same graph, nodes created in a different order (constant before the
  // input, second branch first) — NodeIds differ, structure does not.
  Graph a;
  {
    NodeId in = a.AddInput("x", {Shape{1, 4}, DType::kInt8});
    Rng rng(3);
    NodeId w = a.AddConstant(Tensor::Random(Shape{4, 4}, DType::kInt8, rng),
                             "w");
    NodeId d = a.AddOp("nn.dense", {in, w});
    NodeId r = a.AddOp("nn.relu", {d});
    a.SetOutputs({r});
  }
  Graph b;
  {
    Rng rng(3);
    NodeId w = b.AddConstant(Tensor::Random(Shape{4, 4}, DType::kInt8, rng),
                             "w");
    NodeId in = b.AddInput("x", {Shape{1, 4}, DType::kInt8});
    NodeId d = b.AddOp("nn.dense", {in, w});
    NodeId r = b.AddOp("nn.relu", {d});
    b.SetOutputs({r});
  }
  EXPECT_EQ(StructuralHash(a), StructuralHash(b));
}

TEST(StructuralHash, UnreachableNodesDoNotMatter) {
  Graph a = MakeGraph();
  Graph b = MakeGraph();
  // Dangling constant + op feeding nothing: reachable set is unchanged.
  Rng rng(99);
  NodeId junk = b.AddConstant(
      Tensor::Random(Shape{2, 2}, DType::kInt8, rng), "junk");
  b.AddOp("nn.relu", {junk});
  EXPECT_EQ(StructuralHash(a), StructuralHash(b));
}

TEST(StructuralHash, AttrLiteralOrderDoesNotMatter) {
  Graph a;
  Graph b;
  for (Graph* g : {&a, &b}) {
    NodeId in = g->AddInput("x", {Shape{1, 3, 8, 8}, DType::kInt8});
    Rng rng(1);
    NodeId w = g->AddConstant(
        Tensor::Random(Shape{8, 3, 3, 3}, DType::kInt8, rng), "w");
    // Attr maps hash in sorted-key order, so the literal order below is
    // immaterial.
    AttrMap attrs =
        g == &a ? AttrMap{{"strides", std::vector<i64>{1, 1}},
                          {"padding", std::vector<i64>{1, 1, 1, 1}}}
                : AttrMap{{"padding", std::vector<i64>{1, 1, 1, 1}},
                          {"strides", std::vector<i64>{1, 1}}};
    NodeId conv = g->AddOp("nn.conv2d", {in, w}, attrs);
    g->SetOutputs({conv});
  }
  EXPECT_EQ(StructuralHash(a), StructuralHash(b));
}

TEST(StructuralHash, SemanticEditsChangeTheKey) {
  const Hash128 base = StructuralHash(MakeGraph());

  // Different constant bytes.
  EXPECT_NE(StructuralHash(MakeGraph(/*weight_seed=*/2)), base);

  // Different attr value.
  {
    Graph g;
    NodeId in = g.AddInput("x", {Shape{1, 3, 8, 8}, DType::kInt8});
    Rng rng(1);
    NodeId w = g.AddConstant(
        Tensor::Random(Shape{8, 3, 3, 3}, DType::kInt8, rng), "w");
    NodeId conv = g.AddOp("nn.conv2d", {in, w},
                          AttrMap{{"strides", std::vector<i64>{2, 2}},
                                  {"padding", std::vector<i64>{1, 1, 1, 1}},
                                  {"groups", i64{1}}});
    NodeId relu = g.AddOp("nn.relu", {conv});
    g.SetOutputs({relu});
    EXPECT_NE(StructuralHash(g), base);
  }

  // Different op.
  {
    Graph g = MakeGraph();
    Graph h;
    NodeId in = h.AddInput("x", {Shape{1, 3, 8, 8}, DType::kInt8});
    Rng rng(1);
    NodeId w = h.AddConstant(
        Tensor::Random(Shape{8, 3, 3, 3}, DType::kInt8, rng), "w");
    NodeId conv = h.AddOp("nn.conv2d", {in, w},
                          AttrMap{{"strides", std::vector<i64>{1, 1}},
                                  {"padding", std::vector<i64>{1, 1, 1, 1}},
                                  {"groups", i64{1}}});
    h.SetOutputs({conv});  // no relu
    EXPECT_NE(StructuralHash(h), StructuralHash(g));
  }

  // Different input name (names reach the emitted C symbols, so they are
  // part of the artifact and must be part of the key).
  {
    Graph g;
    NodeId in = g.AddInput("input_renamed", {Shape{1, 3, 8, 8}, DType::kInt8});
    Rng rng(1);
    NodeId w = g.AddConstant(
        Tensor::Random(Shape{8, 3, 3, 3}, DType::kInt8, rng), "w");
    NodeId conv = g.AddOp("nn.conv2d", {in, w},
                          AttrMap{{"strides", std::vector<i64>{1, 1}},
                                  {"padding", std::vector<i64>{1, 1, 1, 1}},
                                  {"groups", i64{1}}});
    NodeId relu = g.AddOp("nn.relu", {conv});
    g.SetOutputs({relu});
    EXPECT_NE(StructuralHash(g), base);
  }
}

TEST(StructuralHash, SharingDiffersFromDuplication) {
  // add(d, d) with one shared dense vs add(d1, d2) with two identical
  // dense nodes: same values, different DAG — the compiler can observe the
  // difference (one kernel vs two), so the hashes must differ.
  Graph shared;
  {
    NodeId in = shared.AddInput("x", {Shape{1, 4}, DType::kInt8});
    Rng rng(3);
    NodeId w = shared.AddConstant(
        Tensor::Random(Shape{4, 4}, DType::kInt8, rng), "w");
    NodeId d = shared.AddOp("nn.dense", {in, w});
    NodeId s = shared.AddOp("add", {d, d});
    shared.SetOutputs({s});
  }
  Graph duplicated;
  {
    NodeId in = duplicated.AddInput("x", {Shape{1, 4}, DType::kInt8});
    Rng rng(3);
    NodeId w = duplicated.AddConstant(
        Tensor::Random(Shape{4, 4}, DType::kInt8, rng), "w");
    NodeId d1 = duplicated.AddOp("nn.dense", {in, w});
    NodeId d2 = duplicated.AddOp("nn.dense", {in, w});
    NodeId s = duplicated.AddOp("add", {d1, d2});
    duplicated.SetOutputs({s});
  }
  EXPECT_NE(StructuralHash(shared), StructuralHash(duplicated));
}

TEST(StructuralHash, SuiteModelsAllDistinct) {
  std::vector<Hash128> hashes;
  for (const auto& m : models::MlperfTinySuite()) {
    hashes.push_back(
        StructuralHash(m.build(models::PrecisionPolicy::kMixed)));
  }
  for (size_t i = 0; i < hashes.size(); ++i) {
    for (size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << i << " vs " << j;
    }
  }
  // And rebuilding the same model reproduces the same hash.
  EXPECT_EQ(
      StructuralHash(models::BuildResNet8(models::PrecisionPolicy::kMixed)),
      StructuralHash(models::BuildResNet8(models::PrecisionPolicy::kMixed)));
}

TEST(OptionsFingerprint, InstrumentationKnobsAreExcluded) {
  compiler::CompileOptions a;
  compiler::CompileOptions b;
  b.instrument.verify = false;
  b.instrument.dump_ir_dir = "/tmp/somewhere";
  b.instrument.dump_ir_filter = "PartitionGraph";
  b.cache = reinterpret_cast<compiler::ArtifactCacheHook*>(0x1);
  EXPECT_EQ(cache::OptionsFingerprint(a), cache::OptionsFingerprint(b));
}

TEST(OptionsFingerprint, ArtifactAffectingFieldsAreIncluded) {
  const ir::Hash128 base =
      cache::OptionsFingerprint(compiler::CompileOptions{});
  EXPECT_NE(cache::OptionsFingerprint(compiler::CompileOptions::PlainTvm()),
            base);
  EXPECT_NE(
      cache::OptionsFingerprint(compiler::CompileOptions::DigitalOnly()),
      base);
  compiler::CompileOptions tiled;
  tiled.tiler.alpha = 2.0;
  EXPECT_NE(cache::OptionsFingerprint(tiled), base);
}

TEST(CacheKey, TextFormIsStable) {
  const Graph g = MakeGraph();
  const compiler::CompileOptions opt;
  const cache::CacheKey k = cache::MakeCacheKey(g, opt);
  EXPECT_EQ(k.ToString().size(), 64u);
  EXPECT_EQ(k, cache::MakeCacheKey(g, opt));
  EXPECT_EQ(k.ToString(), cache::MakeCacheKey(g, opt).ToString());
}

}  // namespace
}  // namespace htvm

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/graph.hpp"

namespace htvm {
namespace {

Graph MakeConvGraph() {
  Graph g;
  NodeId in = g.AddInput("x", {Shape{1, 3, 8, 8}, DType::kInt8});
  Rng rng(1);
  NodeId w = g.AddConstant(
      Tensor::Random(Shape{16, 3, 3, 3}, DType::kInt8, rng), "w");
  NodeId conv = g.AddOp("nn.conv2d", {in, w},
                        AttrMap{{"strides", std::vector<i64>{1, 1}},
                                {"padding", std::vector<i64>{1, 1, 1, 1}},
                                {"groups", i64{1}}});
  g.SetOutputs({conv});
  return g;
}

TEST(Op, Conv2dInference) {
  Graph g = MakeConvGraph();
  const Node& conv = g.node(g.outputs()[0]);
  EXPECT_EQ(conv.type.shape, (Shape{1, 16, 8, 8}));
  EXPECT_EQ(conv.type.dtype, DType::kInt32);
}

TEST(Op, Conv2dStrideAndPad) {
  Graph g;
  NodeId in = g.AddInput("x", {Shape{1, 8, 32, 32}, DType::kInt8});
  Rng rng(1);
  NodeId w = g.AddConstant(
      Tensor::Random(Shape{8, 8, 3, 3}, DType::kInt8, rng));
  NodeId conv = g.AddOp("nn.conv2d", {in, w},
                        AttrMap{{"strides", std::vector<i64>{2, 2}},
                                {"padding", std::vector<i64>{0, 0, 1, 1}}});
  // (32 + 0 + 1 - 3) / 2 + 1 = 16 in both dims.
  EXPECT_EQ(g.node(conv).type.shape, (Shape{1, 8, 16, 16}));
}

TEST(Op, Conv2dRejectsChannelMismatch) {
  Graph g;
  NodeId in = g.AddInput("x", {Shape{1, 3, 8, 8}, DType::kInt8});
  Rng rng(1);
  NodeId w = g.AddConstant(
      Tensor::Random(Shape{16, 4, 3, 3}, DType::kInt8, rng));
  auto r = g.TryAddOp("nn.conv2d", {in, w});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Op, DepthwiseConvInference) {
  Graph g;
  NodeId in = g.AddInput("x", {Shape{1, 16, 10, 10}, DType::kInt8});
  Rng rng(1);
  NodeId w = g.AddConstant(
      Tensor::Random(Shape{16, 1, 3, 3}, DType::kInt8, rng));
  NodeId conv = g.AddOp("nn.conv2d", {in, w},
                        AttrMap{{"groups", i64{16}},
                                {"padding", std::vector<i64>{1, 1, 1, 1}}});
  EXPECT_EQ(g.node(conv).type.shape, (Shape{1, 16, 10, 10}));
}

TEST(Op, DenseInference) {
  Graph g;
  NodeId in = g.AddInput("x", {Shape{1, 64}, DType::kInt8});
  Rng rng(1);
  NodeId w = g.AddConstant(Tensor::Random(Shape{10, 64}, DType::kInt8, rng));
  NodeId d = g.AddOp("nn.dense", {in, w});
  EXPECT_EQ(g.node(d).type.shape, (Shape{1, 10}));
  EXPECT_EQ(g.node(d).type.dtype, DType::kInt32);
}

TEST(Op, AddPromotesInt8ToInt32) {
  Graph g;
  NodeId a = g.AddInput("a", {Shape{1, 4}, DType::kInt8});
  NodeId b = g.AddInput("b", {Shape{1, 4}, DType::kInt8});
  NodeId s = g.AddOp("add", {a, b});
  EXPECT_EQ(g.node(s).type.dtype, DType::kInt32);
}

TEST(Op, CastReadsDtypeAttr) {
  Graph g;
  NodeId a = g.AddInput("a", {Shape{4}, DType::kInt32});
  NodeId c = g.AddOp("cast", {a}, AttrMap{{"dtype", std::string("int8")}});
  EXPECT_EQ(g.node(c).type.dtype, DType::kInt8);
}

TEST(Op, ReshapeInfersMinusOne) {
  Graph g;
  NodeId a = g.AddInput("a", {Shape{1, 2, 3, 4}, DType::kInt8});
  NodeId r = g.AddOp("reshape", {a},
                     AttrMap{{"new_shape", std::vector<i64>{1, -1}}});
  EXPECT_EQ(g.node(r).type.shape, (Shape{1, 24}));
}

TEST(Op, PoolingInference) {
  Graph g;
  NodeId a = g.AddInput("a", {Shape{1, 8, 16, 16}, DType::kInt8});
  NodeId p = g.AddOp("nn.avg_pool2d", {a},
                     AttrMap{{"pool_size", std::vector<i64>{2, 2}},
                             {"strides", std::vector<i64>{2, 2}}});
  EXPECT_EQ(g.node(p).type.shape, (Shape{1, 8, 8, 8}));
  NodeId gp = g.AddOp("nn.global_avg_pool2d", {a});
  EXPECT_EQ(g.node(gp).type.shape, (Shape{1, 8, 1, 1}));
}

TEST(Graph, ValidatePassesOnWellFormed) {
  Graph g = MakeConvGraph();
  EXPECT_TRUE(g.Validate().ok());
}

TEST(Graph, ValidateFailsWithoutOutputs) {
  Graph g;
  g.AddInput("x", {Shape{1}, DType::kInt8});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(Graph, UseCounts) {
  Graph g;
  NodeId a = g.AddInput("a", {Shape{1, 4}, DType::kInt8});
  NodeId s = g.AddOp("add", {a, a});
  g.SetOutputs({s});
  const auto uses = g.UseCounts();
  EXPECT_EQ(uses[static_cast<size_t>(a)], 2);
  EXPECT_EQ(uses[static_cast<size_t>(s)], 1);  // the graph output
}

TEST(Graph, UnknownOpRejected) {
  Graph g;
  NodeId a = g.AddInput("a", {Shape{1}, DType::kInt8});
  auto r = g.TryAddOp("nn.made_up", {a});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Builder, ConvBlockEmitsListing1Chain) {
  GraphBuilder b(1);
  NodeId x = b.Input("x", Shape{1, 8, 8, 8});
  ConvSpec spec;
  spec.out_channels = 16;
  spec = WithSamePadding(spec, 8, 8);
  NodeId out = b.ConvBlock(x, spec, "c");
  Graph g = b.Finish(out);
  // Chain: conv2d, bias_add, right_shift, clip, cast, clip(relu).
  std::vector<std::string> ops;
  for (const Node& n : g.nodes()) {
    if (n.kind == NodeKind::kOp) ops.push_back(n.op);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"nn.conv2d", "nn.bias_add",
                                           "right_shift", "clip", "cast",
                                           "clip"}));
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.node(out).type.dtype, DType::kInt8);
}

TEST(Builder, SamePaddingPreservesSpatialDims) {
  ConvSpec spec;
  spec.kernel_h = spec.kernel_w = 3;
  spec = WithSamePadding(spec, 32, 32);
  EXPECT_EQ(spec.pad_t + spec.pad_b, 2);
  EXPECT_EQ(spec.pad_l + spec.pad_r, 2);
  ConvSpec s2;
  s2.kernel_h = s2.kernel_w = 3;
  s2.stride_h = s2.stride_w = 2;
  s2 = WithSamePadding(s2, 32, 32);
  // TF SAME stride 2: out 16 = (32 + pads - 3)/2 + 1 -> pads = 1
  EXPECT_EQ((32 + s2.pad_t + s2.pad_b - 3) / 2 + 1, 16);
}

TEST(Printer, MentionsOpsAndOutputs) {
  Graph g = MakeConvGraph();
  const std::string text = GraphToString(g);
  EXPECT_NE(text.find("nn.conv2d"), std::string::npos);
  EXPECT_NE(text.find("outputs:"), std::string::npos);
}

}  // namespace
}  // namespace htvm

// Property tests for model-aware fleet placement over SoC families.
//
// Two invariants, swept over 50 random seeds:
//
//   1. Placement optimality — on a heterogeneous fleet with per-(model,
//      SoC-kind) predicted timings, every dispatched batch lands on exactly
//      the SoC minimizing predicted completion (max(free, arrival) +
//      predicted service), ties broken by earlier free time then lower
//      fleet index. The expected argmin is recomputed independently from
//      FleetScheduler::PredictedServiceUs and a mirrored free-time vector.
//
//   2. Cache isolation — compiling the same random network for different
//      SoC kinds produces pairwise-distinct cache keys, and entries never
//      cross-hit: recompiling per (network, SoC) hits its own entry while a
//      different SoC's compile misses.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "compiler/pipeline.hpp"
#include "hw/soc.hpp"
#include "ir/builder.hpp"
#include "serve/scheduler.hpp"
#include "support/rng.hpp"

namespace htvm {
namespace {

using serve::FleetScheduler;
using serve::InferRequest;
using serve::ScheduledBatch;
using serve::SchedulerOptions;

// Same generator as property_test.cpp: small random conv/dw/add/pool
// networks, always ending in GAP + dense.
Graph RandomNetwork(Rng& rng, Shape* in_shape) {
  GraphBuilder b(rng.NextU64());
  i64 c = 1 + static_cast<i64>(rng.UniformInt(1, 3)) * 4;
  i64 hw = static_cast<i64>(rng.UniformInt(6, 14));
  *in_shape = Shape{1, c, hw, hw};
  NodeId x = b.Input("x", *in_shape);
  const i64 stages = rng.UniformInt(2, 5);
  NodeId residual = kInvalidNode;
  for (i64 s = 0; s < stages; ++s) {
    switch (rng.UniformInt(0, 3)) {
      case 0: {
        ConvSpec spec;
        spec.out_channels = static_cast<i64>(rng.UniformInt(1, 3)) * 8;
        spec.kernel_h = spec.kernel_w = rng.UniformInt(0, 1) ? 3 : 1;
        spec.relu = rng.UniformInt(0, 1) == 1;
        spec.shift = rng.UniformInt(4, 8);
        spec = WithSamePadding(spec, hw, hw);
        residual = x;
        x = b.ConvBlock(x, spec, "conv" + std::to_string(s));
        c = spec.out_channels;
        break;
      }
      case 1: {
        ConvSpec spec;
        spec.depthwise = true;
        spec.relu = true;
        spec = WithSamePadding(spec, hw, hw);
        x = b.ConvBlock(x, spec, "dw" + std::to_string(s));
        break;
      }
      case 2: {
        if (residual != kInvalidNode &&
            b.graph().node(residual).type == b.graph().node(x).type) {
          x = b.AddBlock(residual, x, /*relu=*/true, /*shift=*/1);
        } else {
          x = b.graph().AddOp("nn.relu", {x});
        }
        break;
      }
      default: {
        if (hw >= 4) {
          x = b.MaxPool(x, 2, 2);
          hw /= 2;
        }
        break;
      }
    }
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.DenseBlock(x, 4, /*relu=*/false, 6);
  return b.Finish(x);
}

const char* kKindPool[] = {"diana", "diana-pe32", "diana-l1half",
                           "diana-scalar"};

TEST(PlacementProperty, EveryDispatchIsTheArgminOfPredictedCompletion) {
  for (u64 seed = 0; seed < 50; ++seed) {
    Rng rng(0x50C5 + seed * 7919);

    // Random heterogeneous fleet of 2..6 instances.
    const int fleet_size = static_cast<int>(rng.UniformInt(2, 6));
    std::vector<std::string> kinds;
    for (int s = 0; s < fleet_size; ++s) {
      kinds.push_back(kKindPool[rng.UniformInt(0, 3)]);
    }
    std::set<std::string> distinct(kinds.begin(), kinds.end());

    SchedulerOptions options;
    options.fleet_size = fleet_size;
    options.queue_capacity = 4096;  // no rejections in this property
    options.max_batch = 1;          // isolate placement from coalescing
    options.soc_kinds = kinds;
    FleetScheduler sched(options);

    // Random per-(model, kind) timing; each model misses some kinds (the
    // scheduler must never place it there) but runs on at least one.
    const int num_models = static_cast<int>(rng.UniformInt(1, 3));
    for (int m = 0; m < num_models; ++m) {
      bool any = false;
      for (const std::string& kind : distinct) {
        const bool last = kind == *distinct.rbegin();
        if (!any && last) {
          // Force availability on the final kind if every coin said no.
        } else if (rng.UniformInt(0, 3) == 0) {
          continue;  // model unavailable on this kind
        }
        any = true;
        sched.SetModelTiming(m, kind,
                             /*service_us=*/100.0 + rng.UniformInt(0, 1900),
                             /*batch_saving_us=*/rng.UniformInt(0, 50));
      }
      ASSERT_TRUE(sched.HasModelTiming(m));
    }

    // Offer a random arrival sequence and collect every dispatched batch.
    std::vector<ScheduledBatch> batches;
    double arrival = 0;
    for (u64 r = 0; r < 40; ++r) {
      arrival += rng.UniformInt(0, 600);
      const InferRequest request{r, static_cast<int>(
                                        rng.UniformInt(0, num_models - 1)),
                                 arrival};
      ASSERT_TRUE(sched.Offer(request, &batches));
    }
    for (ScheduledBatch& b : sched.Flush()) batches.push_back(std::move(b));

    // Replay: mirror the per-SoC free times and recompute the argmin the
    // scheduler should have picked for each batch, independently.
    std::vector<double> free_us(static_cast<size_t>(fleet_size), 0.0);
    for (const ScheduledBatch& batch : batches) {
      ASSERT_EQ(batch.requests.size(), 1u);
      const double ready = batch.requests[0].request.arrival_us;
      int best = -1;
      double best_done = 0;
      for (int s = 0; s < fleet_size; ++s) {
        const double service = sched.PredictedServiceUs(batch.model, s);
        if (service < 0) continue;  // model unavailable on this kind
        const double done = std::max(free_us[static_cast<size_t>(s)], ready)
                            + service;
        const bool better =
            best < 0 || done < best_done ||
            (done == best_done &&
             free_us[static_cast<size_t>(s)] <
                 free_us[static_cast<size_t>(best)]);
        if (better) {
          best = s;
          best_done = done;
        }
      }
      ASSERT_GE(best, 0) << "seed " << seed;
      EXPECT_EQ(batch.soc, best)
          << "seed " << seed << ": request " << batch.requests[0].request.id
          << " (model " << batch.model << ") placed on SoC " << batch.soc
          << " (" << sched.soc_kinds()[static_cast<size_t>(batch.soc)]
          << ") but the predicted-latency argmin is SoC " << best << " ("
          << sched.soc_kinds()[static_cast<size_t>(best)] << ")";
      EXPECT_NEAR(batch.done_us, best_done, 1e-6) << "seed " << seed;
      free_us[static_cast<size_t>(batch.soc)] = batch.done_us;
    }
    // Everything placed; nothing lost or left behind.
    EXPECT_EQ(static_cast<i64>(batches.size()), sched.admitted());
    EXPECT_EQ(sched.lost(), 0);
  }
}

TEST(PlacementProperty, CacheEntriesNeverCrossHitAcrossSocs) {
  const char* kKinds[] = {"diana", "diana-pe32", "diana-scalar"};
  cache::ArtifactCache cache;
  Rng rng(0xCACE);
  for (u64 seed = 0; seed < 50; ++seed) {
    Shape in_shape;
    const Graph net = RandomNetwork(rng, &in_shape);

    // Distinct keys per SoC for the identical graph, every seed.
    std::set<std::string> keys;
    for (const char* kind : kKinds) {
      compiler::CompileOptions options;
      options.soc = *hw::FindSoc(kind);
      keys.insert(cache.Key(net, options));
    }
    EXPECT_EQ(keys.size(), 3u) << "seed " << seed
                               << ": two SoCs share a cache key";

    // Every 5th network actually compiles through one shared cache: first
    // compile per (network, SoC) misses, the recompile hits its own entry —
    // 3 distinct entries, never a cross-SoC hit.
    if (seed % 5 != 0) continue;
    const cache::CacheStats before = cache.stats();
    for (int round = 0; round < 2; ++round) {
      for (const char* kind : kKinds) {
        compiler::CompileOptions options;
        options.soc = *hw::FindSoc(kind);
        options.cache = &cache;
        auto artifact = compiler::HtvmCompiler{options}.Compile(net);
        ASSERT_TRUE(artifact.ok()) << "seed " << seed << " on " << kind;
        EXPECT_EQ(artifact->soc_name, kind);
      }
    }
    const cache::CacheStats after = cache.stats();
    EXPECT_EQ(after.compiles - before.compiles, 3)
        << "seed " << seed << ": a SoC hit another SoC's entry";
    EXPECT_EQ(after.misses - before.misses, 3) << "seed " << seed;
    EXPECT_EQ(after.hits - before.hits, 3) << "seed " << seed;
  }
}

}  // namespace
}  // namespace htvm

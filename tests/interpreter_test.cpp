#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "nn/interpreter.hpp"
#include "pattern/rewriter.hpp"
#include "pattern/std_patterns.hpp"

namespace htvm {
namespace {

TEST(Interpreter, RunsConvBlock) {
  GraphBuilder b(1);
  NodeId x = b.Input("x", Shape{1, 4, 6, 6});
  ConvSpec spec;
  spec.out_channels = 8;
  spec = WithSamePadding(spec, 6, 6);
  Graph g = b.Finish(b.ConvBlock(x, spec, "c"));

  Rng rng(2);
  const Tensor input = Tensor::Random(Shape{1, 4, 6, 6}, DType::kInt8, rng);
  auto out = nn::RunGraph(g, std::vector<Tensor>{input});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()[0].shape(), (Shape{1, 8, 6, 6}));
  EXPECT_EQ(out.value()[0].dtype(), DType::kInt8);
  // ReLU: outputs non-negative.
  for (i64 i = 0; i < out.value()[0].NumElements(); ++i) {
    EXPECT_GE(out.value()[0].GetFlat(i), 0);
  }
}

TEST(Interpreter, InputTypeMismatchRejected) {
  GraphBuilder b(1);
  NodeId x = b.Input("x", Shape{1, 4});
  Graph g = b.Finish(b.graph().AddOp("nn.relu", {x}));
  Rng rng(1);
  const Tensor wrong = Tensor::Random(Shape{1, 5}, DType::kInt8, rng);
  auto out = nn::RunGraph(g, std::vector<Tensor>{wrong});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(Interpreter, CompositeBodyExecutesLikeInlineOps) {
  GraphBuilder b(7);
  NodeId x = b.Input("x", Shape{1, 8, 5, 5});
  ConvSpec spec;
  spec.out_channels = 8;
  spec = WithSamePadding(spec, 5, 5);
  Graph g = b.Finish(b.ConvBlock(x, spec, "c"));

  const auto accept = [](const Graph&, const MatchResult&, AttrMap* a) {
    a->Set("target", std::string("cpu"));
    return true;
  };
  Graph p = PartitionGraph(g, {{"fused", ConvChainPattern(), accept, 0}});

  Rng rng(8);
  const Tensor input = Tensor::Random(Shape{1, 8, 5, 5}, DType::kInt8, rng);
  auto plain = nn::RunGraph(g, std::vector<Tensor>{input});
  auto comp = nn::RunGraph(p, std::vector<Tensor>{input});
  ASSERT_TRUE(plain.ok() && comp.ok());
  EXPECT_TRUE(plain.value()[0].SameAs(comp.value()[0]));
}

TEST(Interpreter, ReshapeAndFlattenAreViews) {
  Graph g;
  NodeId x = g.AddInput("x", {Shape{1, 2, 3, 4}, DType::kInt8});
  NodeId f = g.AddOp("nn.flatten", {x});
  g.SetOutputs({f});
  Rng rng(1);
  const Tensor input = Tensor::Random(Shape{1, 2, 3, 4}, DType::kInt8, rng);
  auto out = nn::RunGraph(g, std::vector<Tensor>{input});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].shape(), (Shape{1, 24}));
  for (i64 i = 0; i < 24; ++i) {
    EXPECT_EQ(out.value()[0].GetFlat(i), input.GetFlat(i));
  }
}

TEST(Interpreter, EvalOpUnsupportedOpReported) {
  Graph g;
  NodeId x = g.AddInput("x", {Shape{1}, DType::kInt8});
  g.SetOutputs({x});
  Node fake;
  fake.kind = NodeKind::kOp;
  fake.op = "nn.nonexistent";
  const Tensor t = Tensor::Zeros(Shape{1}, DType::kInt8);
  auto r = nn::EvalOp(fake, std::vector<Tensor>{t});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(Interpreter, ResidualAddGraph) {
  GraphBuilder b(5);
  NodeId x = b.Input("x", Shape{1, 4, 4, 4});
  ConvSpec spec;
  spec.out_channels = 4;
  spec.relu = false;
  spec = WithSamePadding(spec, 4, 4);
  NodeId y = b.ConvBlock(x, spec, "c");
  NodeId out = b.AddBlock(x, y, /*relu=*/true, /*shift=*/1);
  Graph g = b.Finish(out);

  Rng rng(6);
  const Tensor input = Tensor::Random(Shape{1, 4, 4, 4}, DType::kInt8, rng);
  auto r = nn::RunGraph(g, std::vector<Tensor>{input});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()[0].shape(), (Shape{1, 4, 4, 4}));
}

}  // namespace
}  // namespace htvm

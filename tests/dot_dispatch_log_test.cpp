#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "ir/dot.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"

namespace htvm {
namespace {

TEST(Dot, NetworkGraphRenders) {
  Graph g = models::BuildDsCnn(models::PrecisionPolicy::kInt8);
  const std::string dot = GraphToDot(g);
  EXPECT_NE(dot.find("digraph htvm"), std::string::npos);
  EXPECT_NE(dot.find("nn.conv2d"), std::string::npos);
  EXPECT_NE(dot.find("output"), std::string::npos);
  // Constants hidden by default.
  EXPECT_EQ(dot.find("const "), std::string::npos);
}

TEST(Dot, PartitionedGraphColorsTargets) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  auto art = compiler::HtvmCompiler{compiler::CompileOptions{}}.Compile(net);
  ASSERT_TRUE(art.ok());
  const std::string dot = GraphToDot(art->kernel_graph);
  EXPECT_NE(dot.find("palegreen"), std::string::npos);  // digital
  EXPECT_NE(dot.find("orange"), std::string::npos);     // analog
  EXPECT_NE(dot.find("lightgray"), std::string::npos);  // cpu
  EXPECT_NE(dot.find("[digital]"), std::string::npos);
}

TEST(Dot, ConstantsShownWhenRequested) {
  models::ConvLayerParams p;
  Graph g = models::MakeConvLayerGraph(p);
  DotOptions opt;
  opt.show_constants = true;
  EXPECT_NE(GraphToDot(g, opt).find("const "), std::string::npos);
}

TEST(DispatchLog, RecordsAcceptsWithRationale) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  auto art = compiler::HtvmCompiler{compiler::CompileOptions{}}.Compile(net);
  ASSERT_TRUE(art.ok());
  // 10 weighted layers + 3 adds reach the dispatcher.
  EXPECT_GE(art->dispatch_log.size(), 13u);
  bool saw_digital = false, saw_analog = false;
  for (const auto& d : art->dispatch_log) {
    EXPECT_FALSE(d.pattern.empty());
    EXPECT_FALSE(d.reason.empty());
    saw_digital |= d.target == "digital";
    saw_analog |= d.target == "analog";
  }
  EXPECT_TRUE(saw_digital);
  EXPECT_TRUE(saw_analog);
}

TEST(DispatchLog, RecordsRejections) {
  // Ternary conv with analog disabled: the diana.conv2d rule must log a
  // CPU fallback with a reason.
  models::ConvLayerParams p;
  p.weight_dtype = DType::kTernary;
  auto art = compiler::HtvmCompiler{compiler::CompileOptions::DigitalOnly()}
                 .Compile(models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok());
  ASSERT_FALSE(art->dispatch_log.empty());
  bool saw_rejection = false;
  for (const auto& d : art->dispatch_log) {
    if (d.target == "cpu") {
      saw_rejection = true;
      EXPECT_NE(d.reason.find("no enabled accelerator"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_rejection);
}

TEST(DispatchLog, EmptyForPlainTvm) {
  Graph net = models::BuildToyAdmosDae(models::PrecisionPolicy::kInt8);
  auto art =
      compiler::HtvmCompiler{compiler::CompileOptions::PlainTvm()}.Compile(
          net);
  ASSERT_TRUE(art.ok());
  EXPECT_TRUE(art->dispatch_log.empty());
}

}  // namespace
}  // namespace htvm

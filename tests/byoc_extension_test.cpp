// Tests for the third BYOC target (hand-tuned CPU kernel library) — the
// extensibility hook the paper's conclusion describes.
#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"
#include "runtime/verify.hpp"

namespace htvm::compiler {
namespace {

TEST(ByocExtension, TunedLibraryTakesChainsWhenEnabled) {
  models::ConvLayerParams p;
  auto art = HtvmCompiler{CompileOptions::TunedCpuOnly()}.Compile(
      models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok());
  ASSERT_EQ(art->kernels.size(), 1u);
  EXPECT_EQ(art->kernels[0].target, "cpu");
  const Node& comp = art->kernel_graph.node(art->kernels[0].node);
  EXPECT_EQ(comp.op, "pulpnn.conv2d");
  EXPECT_EQ(comp.attrs.GetString("kernel_lib"), "tuned");
}

TEST(ByocExtension, AcceleratorsStillWinOverTunedLibrary) {
  models::ConvLayerParams p;
  CompileOptions opt;  // all targets on
  opt.dispatch.enable_tuned_cpu_library = true;
  auto art = HtvmCompiler{opt}.Compile(models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok());
  EXPECT_EQ(art->kernels[0].target, "digital");  // priority ordering
}

TEST(ByocExtension, TunedLibraryFasterThanPlainTvm) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto plain = HtvmCompiler{CompileOptions::PlainTvm()}.Compile(net);
  auto tuned = HtvmCompiler{CompileOptions::TunedCpuOnly()}.Compile(net);
  ASSERT_TRUE(plain.ok() && tuned.ok());
  const double speedup = static_cast<double>(plain->TotalFullCycles()) /
                         static_cast<double>(tuned->TotalFullCycles());
  // Table II shape: CMSIS-NN-class libraries buy ~1.1-1.45x, far from the
  // accelerator's 100x.
  EXPECT_GT(speedup, 1.1);
  EXPECT_LT(speedup, 2.0);
}

TEST(ByocExtension, TunedLibraryGrowsCode) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto plain = HtvmCompiler{CompileOptions::PlainTvm()}.Compile(net);
  auto tuned = HtvmCompiler{CompileOptions::TunedCpuOnly()}.Compile(net);
  ASSERT_TRUE(plain.ok() && tuned.ok());
  EXPECT_GT(tuned->size.code_bytes, plain->size.code_bytes);
}

TEST(ByocExtension, TunedLibraryIsBitExact) {
  models::ConvLayerParams p;
  p.c = 8;
  p.k = 8;
  p.iy = p.ix = 12;
  Graph net = models::MakeConvLayerGraph(p);
  auto art = HtvmCompiler{CompileOptions::TunedCpuOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  Rng rng(5);
  const Tensor input = Tensor::Random(Shape{1, 8, 12, 12}, DType::kInt8, rng);
  auto report = runtime::VerifyArtifact(*art, net, std::vector<Tensor>{input});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->bit_exact);
}

TEST(ByocExtension, TernaryStaysOffTheTunedLibrary) {
  models::ConvLayerParams p;
  p.weight_dtype = DType::kTernary;
  auto art = HtvmCompiler{CompileOptions::TunedCpuOnly()}.Compile(
      models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok());
  for (const auto& k : art->kernels) {
    const Node& comp = art->kernel_graph.node(k.node);
    EXPECT_NE(comp.attrs.GetString("kernel_lib"), "tuned");
  }
}

}  // namespace
}  // namespace htvm::compiler

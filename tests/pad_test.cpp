// nn.pad op + the AbsorbPadding legalization pass (TFLite imports carry
// explicit PAD ops before stride-2 convolutions; the accelerator patterns
// need the padding on the conv attribute).
#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "ir/builder.hpp"
#include "ir/passes.hpp"
#include "nn/interpreter.hpp"
#include "nn/kernels.hpp"

namespace htvm {
namespace {

TEST(Pad, KernelZeroPads) {
  Tensor data = Tensor::FromInt8(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  auto out = nn::Pad2d(data, {1, 0, 0, 2});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 1, 3, 4}));
  EXPECT_EQ(out->At4(0, 0, 0, 0), 0);  // padded row
  EXPECT_EQ(out->At4(0, 0, 1, 0), 1);
  EXPECT_EQ(out->At4(0, 0, 1, 3), 0);  // padded cols
  EXPECT_EQ(out->At4(0, 0, 2, 1), 4);
}

TEST(Pad, OpInference) {
  Graph g;
  NodeId x = g.AddInput("x", {Shape{1, 3, 10, 10}, DType::kInt8});
  NodeId p = g.AddOp("nn.pad", {x},
                     AttrMap{{"pad_width", std::vector<i64>{0, 1, 1, 0}}});
  EXPECT_EQ(g.node(p).type.shape, (Shape{1, 3, 11, 11}));
  auto bad = g.TryAddOp("nn.pad", {x},
                        AttrMap{{"pad_width", std::vector<i64>{-1, 0, 0, 0}}});
  EXPECT_FALSE(bad.ok());
}

// Builds pad -> conv -> requant the way a TFLite import looks.
Graph PaddedConvGraph(u64 seed) {
  GraphBuilder b(seed);
  NodeId x = b.Input("x", Shape{1, 8, 16, 16});
  Graph& g = b.graph();
  NodeId padded = g.AddOp(
      "nn.pad", {x}, AttrMap{{"pad_width", std::vector<i64>{0, 0, 1, 1}}});
  Rng rng(seed + 1);
  NodeId w = g.AddConstant(
      Tensor::Random(Shape{8, 8, 3, 3}, DType::kInt8, rng), "w");
  NodeId conv = g.AddOp("nn.conv2d", {padded, w},
                        AttrMap{{"strides", std::vector<i64>{2, 2}}});
  NodeId bias = g.AddConstant(Tensor::Random(Shape{8}, DType::kInt32, rng));
  NodeId biased = g.AddOp("nn.bias_add", {conv, bias});
  return b.Finish(b.Requant(biased, 7, true));
}

TEST(AbsorbPadding, FoldsPadIntoConvAttr) {
  Graph g = PaddedConvGraph(3);
  Graph folded = AbsorbPadding(g);
  ASSERT_TRUE(folded.Validate().ok());
  bool saw_pad = false;
  const Node* conv = nullptr;
  for (const Node& n : folded.nodes()) {
    if (n.IsOp("nn.pad")) saw_pad = true;
    if (n.IsOp("nn.conv2d")) conv = &n;
  }
  EXPECT_FALSE(saw_pad);
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->attrs.GetIntVec("padding"),
            (std::vector<i64>{0, 0, 1, 1}));
}

TEST(AbsorbPadding, PreservesSemantics) {
  Graph g = PaddedConvGraph(7);
  Graph folded = AbsorbPadding(g);
  Rng rng(9);
  const Tensor input = Tensor::Random(Shape{1, 8, 16, 16}, DType::kInt8, rng);
  auto a = nn::RunGraph(g, std::vector<Tensor>{input});
  auto b = nn::RunGraph(folded, std::vector<Tensor>{input});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.value()[0].SameAs(b.value()[0]));
}

TEST(AbsorbPadding, LeavesSharedPadAlone) {
  // A pad with two consumers cannot be absorbed (one consumer is a pool).
  GraphBuilder b(4);
  NodeId x = b.Input("x", Shape{1, 4, 8, 8});
  Graph& g = b.graph();
  NodeId padded = g.AddOp(
      "nn.pad", {x}, AttrMap{{"pad_width", std::vector<i64>{1, 1, 1, 1}}});
  Rng rng(5);
  NodeId w = g.AddConstant(
      Tensor::Random(Shape{4, 4, 3, 3}, DType::kInt8, rng));
  NodeId conv = g.AddOp("nn.conv2d", {padded, w});
  NodeId conv8 =
      g.AddOp("cast", {conv}, AttrMap{{"dtype", std::string("int8")}});
  NodeId pool = g.AddOp("nn.max_pool2d", {padded},
                        AttrMap{{"pool_size", std::vector<i64>{2, 2}},
                                {"strides", std::vector<i64>{2, 2}}});
  NodeId pool_flat = g.AddOp("nn.flatten", {pool});
  NodeId conv_flat = g.AddOp("nn.flatten", {conv8});
  // Keep both alive via two outputs... single-output graphs only: concat by
  // add on equal-size flattens is overkill; just output the conv path and
  // keep pool alive through it.
  (void)pool_flat;
  g.SetOutputs({conv_flat});
  Graph full = std::move(g);
  // pool_flat is dead but `padded` still has 2 uses at absorb time.
  Graph folded = AbsorbPadding(full);
  bool saw_pad = false;
  for (const Node& n : folded.nodes()) {
    if (n.IsOp("nn.pad")) saw_pad = true;
  }
  EXPECT_TRUE(saw_pad);
}

TEST(AbsorbPadding, PipelineDispatchesPaddedConvToAccelerator) {
  // End-to-end: the TFLite-style pad+conv chain must still reach the
  // digital accelerator (without the pass, the pad would break the match).
  Graph g = PaddedConvGraph(11);
  auto art =
      compiler::HtvmCompiler{compiler::CompileOptions::DigitalOnly()}.Compile(
          g);
  ASSERT_TRUE(art.ok());
  ASSERT_EQ(art->kernels.size(), 1u);
  EXPECT_EQ(art->kernels[0].target, "digital");
}

}  // namespace
}  // namespace htvm

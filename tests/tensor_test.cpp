#include <gtest/gtest.h>

#include "tensor/quantize.hpp"
#include "tensor/tensor.hpp"

namespace htvm {
namespace {

TEST(Shape, NumElementsAndEquality) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s, (Shape{2, 3, 4}));
  EXPECT_NE(s, (Shape{2, 3}));
  EXPECT_EQ(Shape{}.NumElements(), 1);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(Shape, RowMajorStrides) {
  EXPECT_EQ(RowMajorStrides(Shape{2, 3, 4}), (std::vector<i64>{12, 4, 1}));
  EXPECT_EQ(RowMajorStrides(Shape{5}), (std::vector<i64>{1}));
}

TEST(DType, SizesAndNames) {
  EXPECT_EQ(DTypeSizeBytes(DType::kInt8), 1);
  EXPECT_EQ(DTypeSizeBytes(DType::kInt32), 4);
  EXPECT_EQ(DTypeSizeBytes(DType::kTernary), 1);  // unpacked in simulation
  EXPECT_EQ(DTypeStorageBits(DType::kTernary), 2);
  EXPECT_STREQ(DTypeName(DType::kTernary), "ternary");
  DType t;
  EXPECT_TRUE(ParseDType("int32", &t));
  EXPECT_EQ(t, DType::kInt32);
  EXPECT_FALSE(ParseDType("int7", &t));
}

TEST(Tensor, ZerosAndFlatAccess) {
  Tensor t = Tensor::Zeros(Shape{2, 2}, DType::kInt32);
  EXPECT_EQ(t.NumElements(), 4);
  EXPECT_EQ(t.SizeBytes(), 16);
  EXPECT_EQ(t.GetFlat(3), 0);
  t.SetFlat(3, -77);
  EXPECT_EQ(t.GetFlat(3), -77);
}

TEST(Tensor, At4Indexing) {
  Tensor t = Tensor::Zeros(Shape{1, 2, 3, 4}, DType::kInt8);
  t.Set4(0, 1, 2, 3, 42);
  EXPECT_EQ(t.At4(0, 1, 2, 3), 42);
  EXPECT_EQ(t.GetFlat(1 * 12 + 2 * 4 + 3), 42);
}

TEST(Tensor, RandomDeterministicPerSeed) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::Random(Shape{10, 10}, DType::kInt8, r1);
  Tensor b = Tensor::Random(Shape{10, 10}, DType::kInt8, r2);
  EXPECT_TRUE(a.SameAs(b));
}

TEST(Tensor, RandomTernaryHoldsOnlyTernaryValues) {
  Rng rng(11);
  Tensor t = Tensor::Random(Shape{64, 64}, DType::kTernary, rng);
  for (i64 i = 0; i < t.NumElements(); ++i) {
    const i64 v = t.GetFlat(i);
    EXPECT_TRUE(v == -1 || v == 0 || v == 1);
  }
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t = Tensor::FromInt8(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  for (i64 i = 0; i < 6; ++i) EXPECT_EQ(r.GetFlat(i), t.GetFlat(i));
}

TEST(Quantize, RequantizeValueMatchesShiftClipCast) {
  RequantParams p{.shift = 4, .relu = false};
  EXPECT_EQ(RequantizeValue(160, p), 10);
  EXPECT_EQ(RequantizeValue(100000, p), 127);   // saturates high
  EXPECT_EQ(RequantizeValue(-100000, p), -128); // saturates low
  p.relu = true;
  EXPECT_EQ(RequantizeValue(-160, p), 0);
}

TEST(Quantize, RequantizeTensor) {
  Tensor acc = Tensor::FromInt32(Shape{4}, {256, -256, 100000, 8});
  Tensor out = RequantizeTensor(acc, {.shift = 4, .relu = false});
  EXPECT_EQ(out.dtype(), DType::kInt8);
  EXPECT_EQ(out.GetFlat(0), 16);
  EXPECT_EQ(out.GetFlat(1), -16);
  EXPECT_EQ(out.GetFlat(2), 127);
  EXPECT_EQ(out.GetFlat(3), 1);  // 0.5 rounds away from zero
}

TEST(Quantize, ClampTo7Bit) {
  Tensor t = Tensor::FromInt8(Shape{4}, {-128, -64, 63, 127});
  Tensor c = ClampTo7Bit(t);
  EXPECT_EQ(c.GetFlat(0), -64);
  EXPECT_EQ(c.GetFlat(1), -64);
  EXPECT_EQ(c.GetFlat(2), 63);
  EXPECT_EQ(c.GetFlat(3), 63);
}

TEST(Quantize, TernaryPackUnpackRoundTrip) {
  Rng rng(3);
  Tensor t = Tensor::Random(Shape{7, 9}, DType::kTernary, rng);  // 63 elems
  const auto packed = PackTernary(t);
  EXPECT_EQ(packed.size(), 16u);  // ceil(63/4)
  Tensor back = UnpackTernary(packed, t.shape());
  EXPECT_TRUE(back.SameAs(t));
}

TEST(Quantize, TernaryPackDensity) {
  Rng rng(4);
  Tensor t = Tensor::Random(Shape{1024}, DType::kTernary, rng);
  EXPECT_EQ(PackTernary(t).size(), 256u);  // 2 bits/elem exactly
}

}  // namespace
}  // namespace htvm

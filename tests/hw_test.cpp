#include <gtest/gtest.h>

#include "hw/analog_accel.hpp"
#include "hw/cpu.hpp"
#include "hw/digital_accel.hpp"
#include "hw/dma.hpp"
#include "hw/perf.hpp"
#include "ir/builder.hpp"

namespace htvm::hw {
namespace {

const DmaConfig kDma;          // defaults
const DigitalConfig kDigital;  // defaults
const AnalogConfig kAnalog;    // defaults

TEST(Dma, Cost1dScalesWithBytes) {
  const i64 small = DmaCost1d(kDma, 64);
  const i64 big = DmaCost1d(kDma, 6400);
  EXPECT_GT(big, small);
  const i64 transfer = 6400 / kDma.bytes_per_cycle;  // pure bandwidth term
  EXPECT_GE(big, transfer);
  EXPECT_LE(big, transfer + kDma.setup_cycles + kDma.row_setup_cycles);
  EXPECT_EQ(DmaCost1d(kDma, 0), 0);
}

TEST(Dma, StridedTransfersPayPerRow) {
  const i64 contiguous = DmaCost1d(kDma, 4096);
  const i64 strided = DmaCost2d(kDma, 256, 16);  // same bytes, 256 rows
  EXPECT_GT(strided, contiguous);
  EXPECT_GE(strided - contiguous, 255 * kDma.row_setup_cycles - kDma.row_setup_cycles);
}

TEST(Dma, ActTileFullTensorIsOneTransfer) {
  const i64 cost = ActTileDmaCost(kDma, 16, 32, 32, 16, 32, 32);
  EXPECT_EQ(cost, DmaCost1d(kDma, 16 * 32 * 32));
}

TEST(Dma, ActTileFullRowsCheaperThanPartialRows) {
  // Same tile volume; x-cut tiles fragment into per-row segments.
  const i64 full_rows = ActTileDmaCost(kDma, 16, 32, 32, 16, 16, 32);
  const i64 part_rows = ActTileDmaCost(kDma, 16, 32, 32, 16, 32, 16);
  EXPECT_LT(full_rows, part_rows);
}

TEST(Dma, ActTileWholePlanesContiguous) {
  // Slicing channels only keeps the transfer contiguous in C-y-x.
  const i64 planes = ActTileDmaCost(kDma, 16, 32, 32, 4, 32, 32);
  EXPECT_EQ(planes, DmaCost1d(kDma, 4 * 32 * 32));
}

TEST(DigitalAccel, ConvPeakIs256MacsPerCycle) {
  ConvTileGeom g;
  g.k = 16;
  g.c = 16;
  g.oy = 16;
  g.ox = 16;
  g.iy = 18;
  g.ix = 18;
  g.kh = g.kw = 3;
  const i64 cycles = DigitalConvComputeCycles(kDigital, g);
  const i64 macs = ConvTileMacs(g);
  EXPECT_DOUBLE_EQ(static_cast<double>(macs) / static_cast<double>(cycles),
                   256.0);
}

TEST(DigitalAccel, MisalignedChannelsWasteLanes) {
  ConvTileGeom aligned;
  aligned.k = 16;
  aligned.c = 16;
  aligned.oy = aligned.ox = 16;
  aligned.kh = aligned.kw = 3;
  ConvTileGeom misaligned = aligned;
  misaligned.c = 17;  // one channel over the PE grid
  const i64 a = DigitalConvComputeCycles(kDigital, aligned);
  const i64 m = DigitalConvComputeCycles(kDigital, misaligned);
  // 17 channels cost as much as 32.
  EXPECT_EQ(m, 2 * a);
}

TEST(DigitalAccel, MisalignedOutputWidthWastesColumns) {
  ConvTileGeom g;
  g.k = 16;
  g.c = 16;
  g.oy = 16;
  g.kh = g.kw = 1;
  g.ox = 16;
  const i64 c16 = DigitalConvComputeCycles(kDigital, g);
  g.ox = 17;
  const i64 c17 = DigitalConvComputeCycles(kDigital, g);
  EXPECT_EQ(c17, 2 * c16);
}

TEST(DigitalAccel, DensePeakIs256MacsPerCycle) {
  const i64 cycles = DigitalDenseComputeCycles(kDigital, 256, 64);
  EXPECT_EQ(cycles, 16 * 4);
  EXPECT_DOUBLE_EQ(256.0 * 64.0 / static_cast<double>(cycles), 256.0);
}

TEST(DigitalAccel, DwConvPeakIs3p75MacsPerCycle) {
  ConvTileGeom g;
  g.c = 64;
  g.oy = 16;
  g.ox = 16;  // aligned
  g.kh = g.kw = 3;
  const i64 cycles = DigitalDwConvComputeCycles(kDigital, g);
  const double rate =
      static_cast<double>(DwConvTileMacs(g)) / static_cast<double>(cycles);
  EXPECT_NEAR(rate, 3.75, 0.01);
  EXPECT_DOUBLE_EQ(DigitalDwPeakMacsPerCycle(kDigital), 3.75);
}

TEST(AnalogAccel, WeightLoadDominatesSmallLayers) {
  AnalogLayerGeom g;
  g.k = 16;
  g.c = 16;
  g.kh = g.kw = 3;  // 144 rows -> padded to 192
  g.oy = g.ox = 16;
  const i64 load = AnalogWeightLoadCycles(kAnalog, g);
  const i64 compute = AnalogComputeCycles(kAnalog, g);
  EXPECT_GT(load, compute);
  EXPECT_EQ(load, 192 * kAnalog.row_write_cycles);
}

TEST(AnalogAccel, ColumnTilingMultipliesLoad) {
  AnalogLayerGeom g;
  g.k = 1024;  // 2 column tiles of 512
  g.c = 64;
  g.kh = g.kw = 3;
  g.oy = g.ox = 8;
  EXPECT_EQ(AnalogMacroTiles(kAnalog, g), 2);
  AnalogLayerGeom half = g;
  half.k = 512;
  EXPECT_EQ(AnalogWeightLoadCycles(kAnalog, g),
            2 * AnalogWeightLoadCycles(kAnalog, half));
}

TEST(AnalogAccel, StoragePadsToRowGroups) {
  AnalogLayerGeom g;
  g.k = 16;
  g.c = 3;
  g.kh = g.kw = 3;  // 27 rows -> 64 padded
  g.oy = g.ox = 32;
  const i64 bytes = AnalogWeightStorageBytes(kAnalog, g);
  EXPECT_EQ(bytes, 64 * 16 * 2 / 8);
  // Packed ternary is smaller than int8 when rows align...
  AnalogLayerGeom aligned;
  aligned.k = 64;
  aligned.c = 64;
  aligned.kh = aligned.kw = 1;  // 64 rows exactly
  EXPECT_LT(AnalogWeightStorageBytes(kAnalog, aligned), 64 * 64);
  // ...but padding can overtake int8 for tiny-patch layers.
  AnalogLayerGeom tiny;
  tiny.k = 512;
  tiny.c = 2;
  tiny.kh = tiny.kw = 1;  // 2 rows -> 64 padded: 32x blowup
  EXPECT_GT(AnalogWeightStorageBytes(kAnalog, tiny), 512 * 2);
}

TEST(CpuModel, ConvWorkAndCycles) {
  GraphBuilder b(1);
  NodeId x = b.Input("x", Shape{1, 16, 8, 8});
  ConvSpec spec;
  spec.out_channels = 32;
  spec = WithSamePadding(spec, 8, 8);
  Graph g = b.Finish(b.ConvBlock(x, spec, "c"));
  const Node* conv = nullptr;
  for (const Node& n : g.nodes()) {
    if (n.IsOp("nn.conv2d")) conv = &n;
  }
  ASSERT_NE(conv, nullptr);
  const OpWork w = ComputeOpWork(g, *conv);
  EXPECT_EQ(w.macs, 32 * 16 * 8 * 8 * 9);
  EXPECT_FALSE(w.is_dwconv);
  CpuConfig cfg;
  const i64 cycles = CpuOpCycles(cfg, g, *conv);
  EXPECT_NEAR(static_cast<double>(cycles),
              static_cast<double>(w.macs) * cfg.conv_cycles_per_mac,
              1.0);
}

TEST(CpuModel, DepthwiseCostlierPerMac) {
  CpuConfig cfg;
  EXPECT_GT(cfg.dwconv_cycles_per_mac, cfg.conv_cycles_per_mac);
}

TEST(Config, CyclesToMs) {
  DianaConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.CyclesToMs(260000), 1.0);
  EXPECT_DOUBLE_EQ(cfg.CyclesToUs(260), 1.0);
}

TEST(Perf, ProfileAggregation) {
  RunProfile p;
  KernelPerf a;
  a.name = "k0";
  a.target = "digital";
  a.macs = 1000;
  a.peak_cycles = 10;
  a.full_cycles = 12;
  KernelPerf b;
  b.name = "k1";
  b.target = "cpu";
  b.macs = 500;
  b.peak_cycles = 100;
  b.full_cycles = 100;
  p.kernels = {a, b};
  EXPECT_EQ(p.TotalFullCycles(), 112);
  EXPECT_EQ(p.TotalPeakCycles(), 110);
  EXPECT_EQ(p.TotalMacs(), 1500);
  EXPECT_EQ(p.FullCyclesOn("cpu"), 100);
  EXPECT_EQ(p.KernelCountOn("digital"), 1);
  EXPECT_NE(p.ToTable().find("k0"), std::string::npos);
}

}  // namespace
}  // namespace htvm::hw

#include <gtest/gtest.h>

#include "nn/kernels.hpp"
#include "support/rng.hpp"

namespace htvm::nn {
namespace {

TEST(Conv2d, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input as int32.
  Tensor data = Tensor::FromInt8(Shape{1, 1, 2, 2}, {1, -2, 3, 4});
  Tensor w = Tensor::FromInt8(Shape{1, 1, 1, 1}, {1});
  auto out = Conv2d(data, w, {1, 1}, {0, 0, 0, 0}, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->dtype(), DType::kInt32);
  EXPECT_EQ(out->At4(0, 0, 0, 0), 1);
  EXPECT_EQ(out->At4(0, 0, 0, 1), -2);
}

TEST(Conv2d, HandComputed3x3) {
  // All-ones 3x3 kernel on a constant-1 input with zero padding counts the
  // in-bounds neighbours.
  Tensor data = Tensor::FromInt8(Shape{1, 1, 3, 3},
                                 {1, 1, 1, 1, 1, 1, 1, 1, 1});
  Tensor w = Tensor::FromInt8(Shape{1, 1, 3, 3}, {1, 1, 1, 1, 1, 1, 1, 1, 1});
  auto out = Conv2d(data, w, {1, 1}, {1, 1, 1, 1}, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At4(0, 0, 1, 1), 9);  // center
  EXPECT_EQ(out->At4(0, 0, 0, 0), 4);  // corner
  EXPECT_EQ(out->At4(0, 0, 0, 1), 6);  // edge
}

TEST(Conv2d, StrideTwo) {
  Tensor data = Tensor::FromInt8(Shape{1, 1, 4, 4},
                                 {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                  13, 14, 15});
  Tensor w = Tensor::FromInt8(Shape{1, 1, 1, 1}, {2});
  auto out = Conv2d(data, w, {2, 2}, {0, 0, 0, 0}, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(out->At4(0, 0, 0, 0), 0);
  EXPECT_EQ(out->At4(0, 0, 0, 1), 4);
  EXPECT_EQ(out->At4(0, 0, 1, 0), 16);
  EXPECT_EQ(out->At4(0, 0, 1, 1), 20);
}

TEST(Conv2d, DepthwiseKeepsChannelsSeparate) {
  // Two channels, weights 1 and 10: outputs must not mix.
  Tensor data = Tensor::FromInt8(Shape{1, 2, 1, 1}, {3, 5});
  Tensor w = Tensor::FromInt8(Shape{2, 1, 1, 1}, {1, 10});
  auto out = Conv2d(data, w, {1, 1}, {0, 0, 0, 0}, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At4(0, 0, 0, 0), 3);
  EXPECT_EQ(out->At4(0, 1, 0, 0), 50);
}

TEST(Conv2d, TernaryWeightsWork) {
  Tensor data = Tensor::FromInt8(Shape{1, 1, 1, 3}, {10, 20, 30});
  Tensor w(Shape{1, 1, 1, 3}, DType::kTernary);
  w.SetFlat(0, 1);
  w.SetFlat(1, 0);
  w.SetFlat(2, -1);
  auto out = Conv2d(data, w, {1, 1}, {0, 0, 0, 0}, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At4(0, 0, 0, 0), -20);
}

TEST(Conv2d, GroupedMatchesManualSplit) {
  // groups=2 conv equals two independent convs on channel halves.
  Rng rng(17);
  Tensor data = Tensor::Random(Shape{1, 4, 5, 5}, DType::kInt8, rng);
  Tensor w = Tensor::Random(Shape{6, 2, 3, 3}, DType::kInt8, rng);
  auto grouped = Conv2d(data, w, {1, 1}, {1, 1, 1, 1}, 2);
  ASSERT_TRUE(grouped.ok());

  // Manual split.
  Tensor d0(Shape{1, 2, 5, 5}, DType::kInt8), d1(Shape{1, 2, 5, 5},
                                                 DType::kInt8);
  for (i64 c = 0; c < 2; ++c) {
    for (i64 y = 0; y < 5; ++y) {
      for (i64 x = 0; x < 5; ++x) {
        d0.Set4(0, c, y, x, data.At4(0, c, y, x));
        d1.Set4(0, c, y, x, data.At4(0, c + 2, y, x));
      }
    }
  }
  Tensor w0(Shape{3, 2, 3, 3}, DType::kInt8), w1(Shape{3, 2, 3, 3},
                                                 DType::kInt8);
  for (i64 i = 0; i < w0.NumElements(); ++i) {
    w0.SetFlat(i, w.GetFlat(i));
    w1.SetFlat(i, w.GetFlat(i + w0.NumElements()));
  }
  auto g0 = Conv2d(d0, w0, {1, 1}, {1, 1, 1, 1}, 1);
  auto g1 = Conv2d(d1, w1, {1, 1}, {1, 1, 1, 1}, 1);
  ASSERT_TRUE(g0.ok() && g1.ok());
  for (i64 k = 0; k < 3; ++k) {
    for (i64 y = 0; y < 5; ++y) {
      for (i64 x = 0; x < 5; ++x) {
        EXPECT_EQ(grouped->At4(0, k, y, x), g0->At4(0, k, y, x));
        EXPECT_EQ(grouped->At4(0, k + 3, y, x), g1->At4(0, k, y, x));
      }
    }
  }
}

TEST(Dense, HandComputed) {
  Tensor data = Tensor::FromInt8(Shape{1, 3}, {1, 2, 3});
  Tensor w = Tensor::FromInt8(Shape{2, 3}, {1, 0, -1, 2, 2, 2});
  auto out = Dense(data, w);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetFlat(0), -2);
  EXPECT_EQ(out->GetFlat(1), 12);
}

TEST(Dense, MatchesConv1x1) {
  // dense(x, W) == conv2d over a 1x1 spatial map with C=I channels.
  Rng rng(3);
  Tensor x = Tensor::Random(Shape{1, 32}, DType::kInt8, rng);
  Tensor w = Tensor::Random(Shape{8, 32}, DType::kInt8, rng);
  auto d = Dense(x, w);
  ASSERT_TRUE(d.ok());
  auto conv = Conv2d(x.Reshaped(Shape{1, 32, 1, 1}),
                     w.Reshaped(Shape{8, 32, 1, 1}), {1, 1}, {0, 0, 0, 0}, 1);
  ASSERT_TRUE(conv.ok());
  for (i64 k = 0; k < 8; ++k) {
    EXPECT_EQ(d->GetFlat(k), conv->At4(0, k, 0, 0));
  }
}

TEST(BiasAdd, PerChannelAxis1) {
  Tensor data = Tensor::FromInt32(Shape{1, 2, 1, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::FromInt32(Shape{2}, {10, 20});
  auto out = BiasAdd(data, bias, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetFlat(0), 11);
  EXPECT_EQ(out->GetFlat(1), 12);
  EXPECT_EQ(out->GetFlat(2), 23);
  EXPECT_EQ(out->GetFlat(3), 24);
}

TEST(Elementwise, RightShiftClipCastChain) {
  Tensor acc = Tensor::FromInt32(Shape{3}, {1000, -1000, 8});
  auto shifted =
      RightShift(acc, Tensor::FromInt32(Shape{1}, {3}));
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ(shifted->GetFlat(0), 125);
  auto clipped = Clip(*shifted, -128, 127);
  ASSERT_TRUE(clipped.ok());
  EXPECT_EQ(clipped->GetFlat(1), -125);
  auto cast = Cast(*clipped, DType::kInt8);
  ASSERT_TRUE(cast.ok());
  EXPECT_EQ(cast->dtype(), DType::kInt8);
}

TEST(Elementwise, AddPromotesAndSums) {
  Tensor a = Tensor::FromInt8(Shape{2}, {100, -100});
  Tensor b = Tensor::FromInt8(Shape{2}, {100, -100});
  auto out = Add(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->dtype(), DType::kInt32);
  EXPECT_EQ(out->GetFlat(0), 200);  // no int8 wraparound
  EXPECT_EQ(out->GetFlat(1), -200);
}

TEST(Pooling, MaxPool) {
  Tensor data = Tensor::FromInt8(Shape{1, 1, 2, 4},
                                 {1, 5, 2, 6, 3, 7, 4, 8});
  auto out = MaxPool2d(data, {2, 2}, {2, 2}, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 1, 1, 2}));
  EXPECT_EQ(out->At4(0, 0, 0, 0), 7);
  EXPECT_EQ(out->At4(0, 0, 0, 1), 8);
}

TEST(Pooling, AvgPoolRounds) {
  Tensor data = Tensor::FromInt8(Shape{1, 1, 2, 2}, {1, 2, 3, 5});
  auto out = AvgPool2d(data, {2, 2}, {2, 2}, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At4(0, 0, 0, 0), 3);  // 11/4 = 2.75 -> 3
}

TEST(Pooling, GlobalAvgPool) {
  Tensor data = Tensor::FromInt8(Shape{1, 2, 2, 2},
                                 {1, 1, 1, 1, -3, -3, -3, -5});
  auto out = GlobalAvgPool2d(data);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 2, 1, 1}));
  EXPECT_EQ(out->At4(0, 0, 0, 0), 1);
  EXPECT_EQ(out->At4(0, 1, 0, 0), -4);  // -14/4 = -3.5 -> -4 (away from 0)
}

TEST(Softmax, MonotoneAndNormalized) {
  Tensor data = Tensor::FromInt8(Shape{1, 4}, {10, 20, 30, 40});
  auto out = Softmax(data);
  ASSERT_TRUE(out.ok());
  // Monotone in the input, peak dominates.
  EXPECT_LE(out->GetFlat(0), out->GetFlat(1));
  EXPECT_LE(out->GetFlat(1), out->GetFlat(2));
  EXPECT_LE(out->GetFlat(2), out->GetFlat(3));
  EXPECT_GT(out->GetFlat(3), 30);
  // Deterministic.
  auto again = Softmax(data);
  EXPECT_TRUE(out->SameAs(*again));
}

}  // namespace
}  // namespace htvm::nn

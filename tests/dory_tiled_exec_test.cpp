// The core correctness property of the DORY backend: executing a layer
// tile-by-tile through the generated schedule is bit-exact with the untiled
// reference kernels, for every layer kind, geometry and L1 budget.
#include <gtest/gtest.h>

#include "dory/tiled_exec.hpp"
#include "models/layer_zoo.hpp"
#include "nn/kernels.hpp"
#include "tensor/quantize.hpp"

namespace htvm::dory {
namespace {

using models::ConvLayerParams;
using models::MakeConvSpec;
using models::MakeDenseSpec;

const hw::DianaConfig kCfg = hw::DianaConfig::Default();

TilerOptions WithBudget(i64 bytes) {
  TilerOptions o;
  o.l1_budget_bytes = bytes;
  return o;
}

// Reference: untiled conv + bias + requant using the nn kernels.
Tensor ReferenceConv(const AccelLayerSpec& spec, const Tensor& data,
                     const Tensor& weight, const Tensor& bias,
                     bool clamp7bit) {
  const Tensor in = clamp7bit ? ClampTo7Bit(data) : data;
  auto acc = nn::Conv2d(in, weight, {spec.sy, spec.sx},
                        {spec.pad_t, spec.pad_l, spec.pad_b, spec.pad_r},
                        spec.kind == LayerKind::kDwConv2d ? spec.c : 1);
  HTVM_CHECK(acc.ok());
  auto biased = nn::BiasAdd(*acc, bias, 1);
  HTVM_CHECK(biased.ok());
  return RequantizeTensor(*biased, spec.requant);
}

Tensor ReferenceDense(const AccelLayerSpec& spec, const Tensor& data,
                      const Tensor& weight, const Tensor& bias) {
  auto acc = nn::Dense(data, weight);
  HTVM_CHECK(acc.ok());
  auto biased = nn::BiasAdd(*acc, bias, 1);
  HTVM_CHECK(biased.ok());
  return RequantizeTensor(*biased, spec.requant);
}

void ExpectTiledMatchesReference(const ConvLayerParams& p, i64 budget,
                                 AccelTarget target) {
  const AccelLayerSpec spec = MakeConvSpec(p);
  auto sched = BuildSchedule(spec, kCfg, target, WithBudget(budget));
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();

  Rng rng(p.seed + budget);
  const Tensor data =
      Tensor::Random(Shape{1, spec.c, spec.iy, spec.ix}, DType::kInt8, rng);
  const Tensor weight = Tensor::Random(
      Shape{spec.k, spec.kind == LayerKind::kDwConv2d ? 1 : spec.c, spec.kh,
            spec.kw},
      p.weight_dtype, rng);
  const Tensor bias = Tensor::Random(Shape{spec.k}, DType::kInt32, rng);

  auto tiled = ExecuteTiled(*sched, std::vector<Tensor>{data}, &weight, &bias);
  ASSERT_TRUE(tiled.ok()) << tiled.status().ToString();
  const Tensor ref = ReferenceConv(spec, data, weight, bias,
                                   target == AccelTarget::kAnalog);
  ASSERT_EQ(tiled->shape(), ref.shape());
  EXPECT_TRUE(tiled->SameAs(ref))
      << "tiled execution diverged (tiles=" << sched->steps.size() << ")";
}

TEST(TiledExec, UntiledConvMatches) {
  ConvLayerParams p;
  p.c = 8;
  p.k = 8;
  p.iy = p.ix = 10;
  ExpectTiledMatchesReference(p, 256 * 1024, AccelTarget::kDigital);
}

TEST(TiledExec, SpatialTilingMatches) {
  ConvLayerParams p;
  p.c = 8;
  p.k = 8;
  p.iy = p.ix = 16;
  ExpectTiledMatchesReference(p, 2 * 1024, AccelTarget::kDigital);
}

TEST(TiledExec, ChannelTilingWithPsumMatches) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 16;
  p.iy = p.ix = 10;
  ExpectTiledMatchesReference(p, 3 * 1024, AccelTarget::kDigital);
}

TEST(TiledExec, StrideTwoTilingMatches) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 20;
  p.stride = 2;
  ExpectTiledMatchesReference(p, 3 * 1024, AccelTarget::kDigital);
}

TEST(TiledExec, NoPaddingLayerMatches) {
  ConvLayerParams p;
  p.c = 8;
  p.k = 12;
  p.iy = p.ix = 15;
  p.same_padding = false;
  ExpectTiledMatchesReference(p, 2 * 1024, AccelTarget::kDigital);
}

TEST(TiledExec, AsymmetricKernelMatches) {
  ConvLayerParams p;
  p.c = 4;
  p.k = 8;
  p.kh = 7;
  p.kw = 5;
  p.iy = 49;
  p.ix = 10;
  p.stride = 2;
  ExpectTiledMatchesReference(p, 4 * 1024, AccelTarget::kDigital);
}

TEST(TiledExec, DepthwiseTilingMatches) {
  ConvLayerParams p;
  p.depthwise = true;
  p.c = 32;
  p.iy = p.ix = 16;
  ExpectTiledMatchesReference(p, 2 * 1024, AccelTarget::kDigital);
}

TEST(TiledExec, AnalogClampsTo7Bit) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 12;
  p.weight_dtype = DType::kTernary;
  ExpectTiledMatchesReference(p, 16 * 1024, AccelTarget::kAnalog);
}

TEST(TiledExec, AnalogSpatialTilingMatches) {
  ConvLayerParams p;
  p.c = 32;
  p.k = 32;
  p.iy = p.ix = 32;
  p.weight_dtype = DType::kTernary;
  ExpectTiledMatchesReference(p, 8 * 1024, AccelTarget::kAnalog);
}

TEST(TiledExec, DenseTiledMatches) {
  const AccelLayerSpec spec = MakeDenseSpec(640, 128);
  auto sched = BuildSchedule(spec, kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sched.ok());
  ASSERT_GT(sched->steps.size(), 1u);  // weight memory forces tiling
  Rng rng(42);
  const Tensor data = Tensor::Random(Shape{1, 640}, DType::kInt8, rng);
  const Tensor weight = Tensor::Random(Shape{128, 640}, DType::kInt8, rng);
  const Tensor bias = Tensor::Random(Shape{128}, DType::kInt32, rng);
  auto tiled = ExecuteTiled(*sched, std::vector<Tensor>{data}, &weight, &bias);
  ASSERT_TRUE(tiled.ok());
  EXPECT_TRUE(tiled->SameAs(ReferenceDense(spec, data, weight, bias)));
}

TEST(TiledExec, AddTiledMatches) {
  AccelLayerSpec spec;
  spec.kind = LayerKind::kAdd;
  spec.c = spec.k = 32;
  spec.iy = spec.oy = 16;
  spec.ix = spec.ox = 16;
  spec.requant.shift = 1;
  spec.requant.relu = false;
  auto sched = BuildSchedule(spec, kCfg, AccelTarget::kDigital,
                             WithBudget(4 * 1024));
  ASSERT_TRUE(sched.ok());
  Rng rng(5);
  const Tensor a = Tensor::Random(Shape{1, 32, 16, 16}, DType::kInt8, rng);
  const Tensor b = Tensor::Random(Shape{1, 32, 16, 16}, DType::kInt8, rng);
  auto tiled = ExecuteTiled(*sched, std::vector<Tensor>{a, b}, nullptr,
                            nullptr);
  ASSERT_TRUE(tiled.ok()) << tiled.status().ToString();
  auto sum = nn::Add(a, b);
  ASSERT_TRUE(sum.ok());
  const Tensor ref = RequantizeTensor(*sum, spec.requant);
  EXPECT_TRUE(tiled->SameAs(ref));
}

// Property sweep: random geometries x budgets, digital target.
struct ExecCase {
  i64 c, k, hw, kernel, stride, budget;
  bool dw;
};

class TiledExecSweep : public ::testing::TestWithParam<ExecCase> {};

TEST_P(TiledExecSweep, BitExact) {
  const ExecCase e = GetParam();
  ConvLayerParams p;
  p.c = e.c;
  p.k = e.k;
  p.iy = p.ix = e.hw;
  p.kh = p.kw = e.kernel;
  p.stride = e.stride;
  p.depthwise = e.dw;
  p.seed = static_cast<u64>(e.c * 131 + e.hw);
  ExpectTiledMatchesReference(p, e.budget, AccelTarget::kDigital);
}

// Analog-target sweep: ternary weights, 7-bit clamp, spatial-only tiling.
class AnalogExecSweep : public ::testing::TestWithParam<ExecCase> {};

TEST_P(AnalogExecSweep, BitExact) {
  const ExecCase e = GetParam();
  ConvLayerParams p;
  p.c = e.c;
  p.k = e.k;
  p.iy = p.ix = e.hw;
  p.kh = p.kw = e.kernel;
  p.stride = e.stride;
  p.weight_dtype = DType::kTernary;
  p.seed = static_cast<u64>(e.c * 977 + e.hw);
  ExpectTiledMatchesReference(p, e.budget, AccelTarget::kAnalog);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AnalogExecSweep,
    ::testing::Values(ExecCase{8, 8, 16, 3, 1, 2048, false},
                      ExecCase{16, 32, 16, 1, 1, 2048, false},
                      ExecCase{32, 16, 24, 3, 2, 4096, false},
                      ExecCase{24, 24, 20, 3, 1, 8192, false},
                      ExecCase{64, 64, 16, 3, 1, 16384, false},
                      ExecCase{5, 11, 13, 3, 1, 1024, false}));

INSTANTIATE_TEST_SUITE_P(
    Geometries, TiledExecSweep,
    ::testing::Values(ExecCase{3, 16, 32, 3, 1, 4096, false},
                      ExecCase{16, 32, 16, 3, 1, 2048, false},
                      ExecCase{32, 32, 16, 1, 1, 2048, false},
                      ExecCase{24, 24, 12, 5, 1, 4096, false},
                      ExecCase{16, 16, 24, 3, 2, 2048, false},
                      ExecCase{48, 8, 8, 3, 1, 1024, false},
                      ExecCase{64, 64, 8, 1, 1, 2048, false},
                      ExecCase{16, 16, 32, 3, 1, 8192, true},
                      ExecCase{64, 64, 16, 3, 2, 4096, true},
                      ExecCase{7, 13, 11, 3, 1, 1024, false}));

}  // namespace
}  // namespace htvm::dory

#ifndef golden_digital_conv_H_
#define golden_digital_conv_H_
#include <stdint.h>
void golden_digital_conv_run(const int8_t* input0, int8_t* output);
#endif

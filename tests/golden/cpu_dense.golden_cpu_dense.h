#ifndef golden_cpu_dense_H_
#define golden_cpu_dense_H_
#include <stdint.h>
void golden_cpu_dense_run(const int8_t* input0, int8_t* output);
#endif

// Randomized property tests over the core invariants:
//   1. partitioning + lowering never changes program semantics,
//   2. tiled accelerator execution is bit-exact for random geometries,
//   3. the L2 memory planner never overlaps live buffers and never beats
//      the theoretical lower bound,
//   4. requantization and ternary packing round-trip for arbitrary values.
#include <gtest/gtest.h>

#include "cache/artifact_serialize.hpp"
#include "compiler/memory_planner.hpp"
#include "compiler/pipeline.hpp"
#include "dory/tiled_exec.hpp"
#include "ir/builder.hpp"
#include "models/layer_zoo.hpp"
#include "nn/interpreter.hpp"
#include "runtime/verify.hpp"
#include "support/string_utils.hpp"
#include "tensor/quantize.hpp"
#include "tvmgen/fusion.hpp"

namespace htvm {
namespace {

// Random small network: a chain of conv / dw / pool / add / layernorm /
// gelu stages, optionally capped with a transformer-style matmul head.
Graph RandomNetwork(Rng& rng, Shape* in_shape) {
  GraphBuilder b(rng.NextU64());
  i64 c = 1 + static_cast<i64>(rng.UniformInt(1, 3)) * 4;  // 8..16ish
  i64 hw = static_cast<i64>(rng.UniformInt(6, 14));
  *in_shape = Shape{1, c, hw, hw};
  NodeId x = b.Input("x", *in_shape);
  const i64 stages = rng.UniformInt(2, 5);
  NodeId residual = kInvalidNode;
  for (i64 s = 0; s < stages; ++s) {
    switch (rng.UniformInt(0, 5)) {
      case 0: {  // conv
        ConvSpec spec;
        spec.out_channels = static_cast<i64>(rng.UniformInt(1, 3)) * 8;
        spec.kernel_h = spec.kernel_w = rng.UniformInt(0, 1) ? 3 : 1;
        spec.relu = rng.UniformInt(0, 1) == 1;
        spec.shift = rng.UniformInt(4, 8);
        spec = WithSamePadding(spec, hw, hw);
        residual = x;
        x = b.ConvBlock(x, spec, "conv" + std::to_string(s));
        c = spec.out_channels;
        break;
      }
      case 1: {  // depthwise
        ConvSpec spec;
        spec.depthwise = true;
        spec.relu = true;
        spec = WithSamePadding(spec, hw, hw);
        x = b.ConvBlock(x, spec, "dw" + std::to_string(s));
        break;
      }
      case 2: {  // residual add when shapes allow
        if (residual != kInvalidNode &&
            b.graph().node(residual).type == b.graph().node(x).type) {
          x = b.AddBlock(residual, x, /*relu=*/true, /*shift=*/1);
        } else {
          x = b.graph().AddOp("nn.relu", {x});
        }
        break;
      }
      case 3: {  // pool (shrinks spatial dims)
        if (hw >= 4) {
          x = b.MaxPool(x, 2, 2);
          hw /= 2;
        }
        break;
      }
      case 4: {  // integer layernorm over the innermost axis
        x = b.LayerNorm(x);
        break;
      }
      default: {  // GELU on the int8 activation grid
        x = b.Gelu(x);
        break;
      }
    }
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  if (rng.UniformInt(0, 1) == 1) {
    // Transformer-style head: constant-weight matmul chain + GELU +
    // layernorm (the diana.matmul dispatch path on accelerator configs).
    x = b.LayerNorm(b.Gelu(b.MatmulBlock(x, 8, /*relu=*/false, /*shift=*/6,
                                         "mm_head")));
  }
  x = b.DenseBlock(x, 4, /*relu=*/false, 6);
  return b.Finish(x);
}

TEST(Property, PartitioningPreservesSemanticsOnRandomNetworks) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 12; ++trial) {
    Shape in_shape;
    Graph net = RandomNetwork(rng, &in_shape);
    ASSERT_TRUE(net.Validate().ok());
    auto art =
        compiler::HtvmCompiler{compiler::CompileOptions::DigitalOnly()}
            .Compile(net);
    ASSERT_TRUE(art.ok()) << "trial " << trial << ": "
                          << art.status().ToString();
    Rng data_rng(trial * 977 + 3);
    const Tensor input = Tensor::Random(in_shape, DType::kInt8, data_rng);
    auto report =
        runtime::VerifyArtifact(*art, net, std::vector<Tensor>{input});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->bit_exact)
        << "trial " << trial << ": " << report->mismatched_elements << "/"
        << report->total_elements << " elements differ";
  }
}

// Parallel CompileKernels is invisible in the artifact: for random
// networks, compiling with lanes on the shared pool produces byte-identical
// artifact_serialize text (wall-clock excluded) and, on failure, the
// identical first error. A failing seed is printed for reproduction: seed
// RandomNetwork's Rng with it directly.
TEST(Property, ParallelCompileMatchesSequentialOnRandomNetworks) {
  Rng seed_rng(0x51D5);
  for (int trial = 0; trial < 50; ++trial) {
    const u64 seed = seed_rng.NextU64();
    Rng rng(seed);
    Shape in_shape;
    const Graph net = RandomNetwork(rng, &in_shape);
    ASSERT_TRUE(net.Validate().ok());
    compiler::CompileOptions sequential;  // mixed: widest dispatch coverage
    sequential.compile_threads = 1;
    compiler::CompileOptions parallel;
    parallel.compile_threads = 4;
    const auto a = compiler::HtvmCompiler{sequential}.Compile(net);
    const auto b = compiler::HtvmCompiler{parallel}.Compile(net);
    ASSERT_EQ(a.ok(), b.ok())
        << "trial " << trial << ": reproduce with RandomNetwork seed 0x"
        << std::hex << seed;
    if (!a.ok()) {
      EXPECT_EQ(a.status().ToString(), b.status().ToString())
          << "trial " << trial << ": reproduce with RandomNetwork seed 0x"
          << std::hex << seed;
      continue;
    }
    EXPECT_EQ(cache::SerializeArtifactForDiff(*a),
              cache::SerializeArtifactForDiff(*b))
        << "trial " << trial << ": reproduce with RandomNetwork seed 0x"
        << std::hex << seed;
  }
}

TEST(Property, TiledSimulationMatchesOnRandomNetworks) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 6; ++trial) {
    Shape in_shape;
    Graph net = RandomNetwork(rng, &in_shape);
    compiler::CompileOptions opt = compiler::CompileOptions::DigitalOnly();
    opt.tiler.l1_budget_bytes = 2 * 1024;  // force aggressive tiling
    auto art = compiler::HtvmCompiler{opt}.Compile(net);
    if (!art.ok()) continue;  // tiny L1 may be infeasible; other trials cover
    Rng data_rng(trial * 131 + 7);
    const Tensor input = Tensor::Random(in_shape, DType::kInt8, data_rng);
    auto report = runtime::VerifyArtifact(*art, net,
                                          std::vector<Tensor>{input},
                                          /*simulate_tiles=*/true);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->bit_exact) << "trial " << trial;
  }
}

TEST(Property, RandomConvGeometriesTiledBitExact) {
  Rng rng(0xCAFE);
  const hw::DianaConfig cfg;
  for (int trial = 0; trial < 30; ++trial) {
    models::ConvLayerParams p;
    p.c = rng.UniformInt(1, 40);
    p.k = rng.UniformInt(1, 40);
    p.iy = rng.UniformInt(3, 24);
    p.ix = rng.UniformInt(3, 24);
    p.kh = p.kw = rng.UniformInt(0, 1) ? 3 : 1;
    p.stride = rng.UniformInt(1, 2);
    p.same_padding = rng.UniformInt(0, 1) == 1;
    p.shift = rng.UniformInt(4, 8);
    p.seed = rng.NextU64();
    if (!p.same_padding && (p.iy < p.kh || p.ix < p.kw)) continue;
    const auto spec = models::MakeConvSpec(p);
    dory::TilerOptions o;
    o.l1_budget_bytes = rng.UniformInt(1, 8) * 1024;
    auto sched =
        dory::BuildSchedule(spec, cfg, dory::AccelTarget::kDigital, o);
    if (!sched.ok()) continue;

    Rng data_rng(p.seed);
    const Tensor data = Tensor::Random(Shape{1, spec.c, spec.iy, spec.ix},
                                       DType::kInt8, data_rng);
    const Tensor weight = Tensor::Random(
        Shape{spec.k, spec.c, spec.kh, spec.kw}, DType::kInt8, data_rng);
    const Tensor bias = Tensor::Random(Shape{spec.k}, DType::kInt32,
                                       data_rng);
    auto tiled =
        dory::ExecuteTiled(*sched, std::vector<Tensor>{data}, &weight, &bias);
    ASSERT_TRUE(tiled.ok()) << tiled.status().ToString();

    auto acc = nn::Conv2d(data, weight, {spec.sy, spec.sx},
                          {spec.pad_t, spec.pad_l, spec.pad_b, spec.pad_r},
                          1);
    ASSERT_TRUE(acc.ok());
    auto biased = nn::BiasAdd(*acc, bias, 1);
    ASSERT_TRUE(biased.ok());
    const Tensor ref = RequantizeTensor(*biased, spec.requant);
    EXPECT_TRUE(tiled->SameAs(ref))
        << StrFormat("trial %d: c=%lld k=%lld hw=%lldx%lld k%lld s%lld",
                     trial, (long long)p.c, (long long)p.k, (long long)p.iy,
                     (long long)p.ix, (long long)p.kh, (long long)p.stride);
  }
}

TEST(Property, MemoryPlannerNeverOverlapsOnRandomGraphs) {
  Rng rng(0xD00D);
  for (int trial = 0; trial < 15; ++trial) {
    // Random DAG of relu/add ops with diamond shapes.
    Graph g;
    std::vector<NodeId> values;
    const i64 elems = rng.UniformInt(16, 512);
    values.push_back(g.AddInput("x", {Shape{1, elems}, DType::kInt8}));
    const i64 n_ops = rng.UniformInt(3, 12);
    for (i64 i = 0; i < n_ops; ++i) {
      const NodeId a =
          values[static_cast<size_t>(rng.UniformInt(0, static_cast<i64>(values.size()) - 1))];
      if (rng.UniformInt(0, 2) == 0 && values.size() >= 2) {
        const NodeId b2 =
            values[static_cast<size_t>(rng.UniformInt(0, static_cast<i64>(values.size()) - 1))];
        const NodeId sum = g.AddOp("add", {a, b2});
        values.push_back(
            g.AddOp("cast", {sum}, AttrMap{{"dtype", std::string("int8")}}));
      } else {
        values.push_back(g.AddOp("nn.relu", {a}));
      }
    }
    g.SetOutputs({values.back()});
    Graph lowered = tvmgen::LowerToKernels(g);
    const auto plan =
        compiler::PlanL2Memory(lowered, 0, 1 << 24, /*reuse=*/true);
    for (size_t i = 0; i < plan.buffers.size(); ++i) {
      for (size_t j = i + 1; j < plan.buffers.size(); ++j) {
        const auto& a = plan.buffers[i];
        const auto& b2 = plan.buffers[j];
        const bool time_overlap =
            a.def_time <= b2.last_use_time && b2.def_time <= a.last_use_time;
        const bool space_overlap = a.offset < b2.offset + b2.size &&
                                   b2.offset < a.offset + a.size;
        EXPECT_FALSE(time_overlap && space_overlap)
            << "trial " << trial << " buffers " << i << "," << j;
      }
    }
    // Reuse never exceeds the no-reuse arena.
    const auto no_reuse =
        compiler::PlanL2Memory(lowered, 0, 1 << 24, /*reuse=*/false);
    EXPECT_LE(plan.arena_bytes, no_reuse.arena_bytes);
  }
}

TEST(Property, RequantMonotoneAndBounded) {
  Rng rng(0xABCD);
  for (int trial = 0; trial < 1000; ++trial) {
    const i64 a = rng.UniformInt(-1'000'000, 1'000'000);
    const i64 b = a + rng.UniformInt(0, 1000);
    RequantParams p{.shift = rng.UniformInt(0, 12),
                    .relu = rng.UniformInt(0, 1) == 1};
    const i8 ra = RequantizeValue(a, p);
    const i8 rb = RequantizeValue(b, p);
    EXPECT_LE(ra, rb);  // monotone
    EXPECT_GE(ra, p.relu ? 0 : -128);
    EXPECT_LE(ra, 127);
  }
}

TEST(Property, TernaryPackRoundTripRandomSizes) {
  Rng rng(0x7777);
  for (int trial = 0; trial < 20; ++trial) {
    const i64 n = rng.UniformInt(1, 4096);
    Tensor t = Tensor::Random(Shape{n}, DType::kTernary, rng);
    const auto packed = PackTernary(t);
    EXPECT_EQ(static_cast<i64>(packed.size()), (n + 3) / 4);
    EXPECT_TRUE(UnpackTernary(packed, t.shape()).SameAs(t));
  }
}

}  // namespace
}  // namespace htvm

#include <gtest/gtest.h>

#include "dory/schedule.hpp"
#include "models/layer_zoo.hpp"

namespace htvm::dory {
namespace {

using models::ConvLayerParams;
using models::MakeConvSpec;
using models::MakeDenseSpec;

const hw::DianaConfig kCfg = hw::DianaConfig::Default();

TilerOptions WithBudget(i64 bytes) {
  TilerOptions o;
  o.l1_budget_bytes = bytes;
  return o;
}

TEST(Tiler, SmallLayerFitsUntiled) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 16;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->needs_tiling);
  EXPECT_EQ(sol->TileCount(), 1);
  EXPECT_EQ(sol->c_t, 16);
  EXPECT_EQ(sol->oy_t, 16);
}

TEST(Tiler, LargeLayerNeedsTiling) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 64;  // input alone is 256 kB
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->needs_tiling);
  EXPECT_GT(sol->TileCount(), 1);
}

TEST(Tiler, RespectsL1Constraint) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 32;
  for (const i64 budget : {256 * 1024, 64 * 1024, 16 * 1024, 4 * 1024}) {
    auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                           WithBudget(budget));
    ASSERT_TRUE(sol.ok()) << "budget " << budget;
    EXPECT_LT(sol->l1_bytes, budget);
  }
}

TEST(Tiler, InfeasibleBudgetReported) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 32;
  // Even a 1x1x1x1 tile needs a 3x3 input halo: 9 B double-buffered plus a
  // psum word exceeds 16 B.
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                         WithBudget(16));
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
}

TEST(Tiler, PeHeuristicPrefersChannelMultiplesOf16) {
  // C = 96: candidates include 32/48/96...; with heuristics the choice must
  // land on a multiple of 16 when one is feasible.
  ConvLayerParams p;
  p.c = 96;
  p.k = 96;
  p.iy = p.ix = 32;
  TilerOptions with = WithBudget(24 * 1024);
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, with);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->needs_tiling);
  EXPECT_EQ(sol->c_t % 16, 0) << "c_t=" << sol->c_t;
}

TEST(Tiler, DmaHeuristicReducesTransferFragmentation) {
  // The DMA heuristic exists to minimize non-contiguous input transfers
  // (Sec. III-C): with it enabled the chosen tile must keep the input rows
  // contiguous (full-width tiles) or at least not transfer activations less
  // efficiently than the memory-only objective.
  ConvLayerParams p;
  p.c = 32;
  p.k = 32;
  p.iy = p.ix = 64;
  const auto spec = MakeConvSpec(p);
  TilerOptions with = WithBudget(24 * 1024);
  with.enable_dma_heuristic = true;
  TilerOptions without = with;
  without.enable_dma_heuristic = false;
  without.enable_pe_heuristics = false;
  auto sched_dma = BuildSchedule(spec, kCfg, AccelTarget::kDigital, with);
  auto sched_plain =
      BuildSchedule(spec, kCfg, AccelTarget::kDigital, without);
  ASSERT_TRUE(sched_dma.ok() && sched_plain.ok());
  EXPECT_TRUE(sched_dma->solution.ix_t == spec.ix ||
              sched_dma->act_dma_cycles <= sched_plain->act_dma_cycles);
  EXPECT_LE(sched_dma->full_cycles, sched_plain->full_cycles);
}

TEST(Tiler, PsumFlagSetWhenChannelsTiled) {
  ConvLayerParams p;
  p.c = 256;
  p.k = 32;
  p.iy = p.ix = 32;  // 256 kB input forces C tiling
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                         WithBudget(32 * 1024));
  ASSERT_TRUE(sol.ok());
  if (sol->c_t < 256) {
    EXPECT_TRUE(sol->psum);
  }
}

TEST(Tiler, AnalogNeverTilesChannels) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 64;
  p.weight_dtype = DType::kTernary;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kAnalog,
                         WithBudget(32 * 1024));
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->c_t, 64);
  EXPECT_EQ(sol->n_c, 1);
  EXPECT_FALSE(sol->psum);
}

TEST(Tiler, DenseTilesWhenWeightMemoryOverflows) {
  // 640x128 int8 weights = 80 kB > 64 kB digital weight memory.
  auto spec = MakeDenseSpec(640, 128);
  auto sol = SolveTiling(spec, kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->needs_tiling);
  EXPECT_LT(sol->c_t * sol->k_t, 64 * 1024);
}

TEST(Tiler, DwConvTiesOutputChannelsToInput) {
  ConvLayerParams p;
  p.depthwise = true;
  p.c = 64;
  p.iy = p.ix = 64;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                         WithBudget(16 * 1024));
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->k_t, sol->c_t);
  EXPECT_FALSE(sol->psum);
}

TEST(Tiler, TileL1BytesAccountsDoubleBuffering) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 16;
  auto spec = MakeConvSpec(p);
  TilerOptions db;
  db.double_buffer = true;
  TilerOptions sb;
  sb.double_buffer = false;
  const i64 with_db = TileL1Bytes(spec, AccelTarget::kDigital, db, 16, 16, 8,
                                  8, false);
  const i64 without = TileL1Bytes(spec, AccelTarget::kDigital, sb, 16, 16, 8,
                                  8, false);
  EXPECT_EQ(with_db, 2 * without);
}

TEST(Tiler, ObjectiveMonotoneInMemoryUse) {
  // With heuristics off, the solver maximizes memory utilization: the
  // winning tile must use more than half the budget unless the layer is
  // smaller than that.
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 32;
  TilerOptions o = WithBudget(32 * 1024);
  o.enable_pe_heuristics = false;
  o.enable_dma_heuristic = false;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, o);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->l1_bytes, 16 * 1024);
}

// Parameterized sweep: every solution satisfies Eq. 2 and covers the layer.
struct SweepCase {
  i64 c, k, hw, budget;
};

class TilerSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TilerSweep, SolutionsAreFeasibleAndCovering) {
  const SweepCase sc = GetParam();
  ConvLayerParams p;
  p.c = sc.c;
  p.k = sc.k;
  p.iy = p.ix = sc.hw;
  const auto spec = MakeConvSpec(p);
  auto sol = SolveTiling(spec, kCfg, AccelTarget::kDigital,
                         WithBudget(sc.budget));
  if (!sol.ok()) GTEST_SKIP() << "infeasible at this budget";
  EXPECT_LT(sol->l1_bytes, sc.budget);
  EXPECT_GE(sol->n_c * sol->c_t, spec.c);
  EXPECT_GE(sol->n_k * sol->k_t, spec.k);
  EXPECT_GE(sol->n_y * sol->oy_t, spec.oy);
  EXPECT_GE(sol->n_x * sol->ox_t, spec.ox);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TilerSweep,
    ::testing::Values(SweepCase{16, 16, 32, 8 * 1024},
                      SweepCase{32, 64, 32, 16 * 1024},
                      SweepCase{64, 64, 64, 32 * 1024},
                      SweepCase{128, 128, 8, 8 * 1024},
                      SweepCase{3, 16, 32, 4 * 1024},
                      SweepCase{96, 96, 16, 12 * 1024},
                      SweepCase{64, 64, 64, 256 * 1024}));

}  // namespace
}  // namespace htvm::dory

#include <gtest/gtest.h>

#include "dory/schedule.hpp"
#include "models/layer_zoo.hpp"
#include "support/math_utils.hpp"
#include "support/rng.hpp"
#include "support/string_utils.hpp"

namespace htvm::dory {
namespace {

using models::ConvLayerParams;
using models::MakeConvSpec;
using models::MakeDenseSpec;

const hw::DianaConfig kCfg = hw::DianaConfig::Default();

TilerOptions WithBudget(i64 bytes) {
  TilerOptions o;
  o.l1_budget_bytes = bytes;
  return o;
}

TEST(Tiler, SmallLayerFitsUntiled) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 16;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_FALSE(sol->needs_tiling);
  EXPECT_EQ(sol->TileCount(), 1);
  EXPECT_EQ(sol->c_t, 16);
  EXPECT_EQ(sol->oy_t, 16);
}

TEST(Tiler, LargeLayerNeedsTiling) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 64;  // input alone is 256 kB
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->needs_tiling);
  EXPECT_GT(sol->TileCount(), 1);
}

TEST(Tiler, RespectsL1Constraint) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 32;
  for (const i64 budget : {256 * 1024, 64 * 1024, 16 * 1024, 4 * 1024}) {
    auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                           WithBudget(budget));
    ASSERT_TRUE(sol.ok()) << "budget " << budget;
    EXPECT_LT(sol->l1_bytes, budget);
  }
}

TEST(Tiler, InfeasibleBudgetReported) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 32;
  // Even a 1x1x1x1 tile needs a 3x3 input halo: 9 B double-buffered plus a
  // psum word exceeds 16 B.
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                         WithBudget(16));
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
}

TEST(Tiler, PeHeuristicPrefersChannelMultiplesOf16) {
  // C = 96: candidates include 32/48/96...; with heuristics the choice must
  // land on a multiple of 16 when one is feasible.
  ConvLayerParams p;
  p.c = 96;
  p.k = 96;
  p.iy = p.ix = 32;
  TilerOptions with = WithBudget(24 * 1024);
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, with);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->needs_tiling);
  EXPECT_EQ(sol->c_t % 16, 0) << "c_t=" << sol->c_t;
}

TEST(Tiler, DmaHeuristicReducesTransferFragmentation) {
  // The DMA heuristic exists to minimize non-contiguous input transfers
  // (Sec. III-C): with it enabled the chosen tile must keep the input rows
  // contiguous (full-width tiles) or at least not transfer activations less
  // efficiently than the memory-only objective.
  ConvLayerParams p;
  p.c = 32;
  p.k = 32;
  p.iy = p.ix = 64;
  const auto spec = MakeConvSpec(p);
  TilerOptions with = WithBudget(24 * 1024);
  with.enable_dma_heuristic = true;
  TilerOptions without = with;
  without.enable_dma_heuristic = false;
  without.enable_pe_heuristics = false;
  auto sched_dma = BuildSchedule(spec, kCfg, AccelTarget::kDigital, with);
  auto sched_plain =
      BuildSchedule(spec, kCfg, AccelTarget::kDigital, without);
  ASSERT_TRUE(sched_dma.ok() && sched_plain.ok());
  EXPECT_TRUE(sched_dma->solution.ix_t == spec.ix ||
              sched_dma->act_dma_cycles <= sched_plain->act_dma_cycles);
  EXPECT_LE(sched_dma->full_cycles, sched_plain->full_cycles);
}

TEST(Tiler, PsumFlagSetWhenChannelsTiled) {
  ConvLayerParams p;
  p.c = 256;
  p.k = 32;
  p.iy = p.ix = 32;  // 256 kB input forces C tiling
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                         WithBudget(32 * 1024));
  ASSERT_TRUE(sol.ok());
  if (sol->c_t < 256) {
    EXPECT_TRUE(sol->psum);
  }
}

TEST(Tiler, AnalogNeverTilesChannels) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 64;
  p.weight_dtype = DType::kTernary;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kAnalog,
                         WithBudget(32 * 1024));
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->c_t, 64);
  EXPECT_EQ(sol->n_c, 1);
  EXPECT_FALSE(sol->psum);
}

TEST(Tiler, DenseTilesWhenWeightMemoryOverflows) {
  // 640x128 int8 weights = 80 kB > 64 kB digital weight memory.
  auto spec = MakeDenseSpec(640, 128);
  auto sol = SolveTiling(spec, kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->needs_tiling);
  EXPECT_LT(sol->c_t * sol->k_t, 64 * 1024);
}

TEST(Tiler, DwConvTiesOutputChannelsToInput) {
  ConvLayerParams p;
  p.depthwise = true;
  p.c = 64;
  p.iy = p.ix = 64;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital,
                         WithBudget(16 * 1024));
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->k_t, sol->c_t);
  EXPECT_FALSE(sol->psum);
}

TEST(Tiler, TileL1BytesAccountsDoubleBuffering) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 16;
  auto spec = MakeConvSpec(p);
  TilerOptions db;
  db.double_buffer = true;
  TilerOptions sb;
  sb.double_buffer = false;
  const i64 with_db = TileL1Bytes(spec, AccelTarget::kDigital, db, 16, 16, 8,
                                  8, false);
  const i64 without = TileL1Bytes(spec, AccelTarget::kDigital, sb, 16, 16, 8,
                                  8, false);
  EXPECT_EQ(with_db, 2 * without);
}

TEST(Tiler, ObjectiveMonotoneInMemoryUse) {
  // With heuristics off, the solver maximizes memory utilization: the
  // winning tile must use more than half the budget unless the layer is
  // smaller than that.
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 32;
  TilerOptions o = WithBudget(32 * 1024);
  o.enable_pe_heuristics = false;
  o.enable_dma_heuristic = false;
  auto sol = SolveTiling(MakeConvSpec(p), kCfg, AccelTarget::kDigital, o);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->l1_bytes, 16 * 1024);
}

// Parameterized sweep: every solution satisfies Eq. 2 and covers the layer.
struct SweepCase {
  i64 c, k, hw, budget;
};

class TilerSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TilerSweep, SolutionsAreFeasibleAndCovering) {
  const SweepCase sc = GetParam();
  ConvLayerParams p;
  p.c = sc.c;
  p.k = sc.k;
  p.iy = p.ix = sc.hw;
  const auto spec = MakeConvSpec(p);
  auto sol = SolveTiling(spec, kCfg, AccelTarget::kDigital,
                         WithBudget(sc.budget));
  if (!sol.ok()) GTEST_SKIP() << "infeasible at this budget";
  EXPECT_LT(sol->l1_bytes, sc.budget);
  EXPECT_GE(sol->n_c * sol->c_t, spec.c);
  EXPECT_GE(sol->n_k * sol->k_t, spec.k);
  EXPECT_GE(sol->n_y * sol->oy_t, spec.oy);
  EXPECT_GE(sol->n_x * sol->ox_t, spec.ox);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TilerSweep,
    ::testing::Values(SweepCase{16, 16, 32, 8 * 1024},
                      SweepCase{32, 64, 32, 16 * 1024},
                      SweepCase{64, 64, 64, 32 * 1024},
                      SweepCase{128, 128, 8, 8 * 1024},
                      SweepCase{3, 16, 32, 4 * 1024},
                      SweepCase{96, 96, 16, 12 * 1024},
                      SweepCase{64, 64, 64, 256 * 1024}));

// ---------------------------------------------------------------------------
// Property-based tests: random layer geometries from a seeded Rng. Either
// the solver reports ResourceExhausted, or the solution must satisfy the
// structural invariants — no hand-picked geometry, so these catch corner
// cases (prime dims, stride-2 halos, tiny budgets) the sweep above misses.
// ---------------------------------------------------------------------------

ConvLayerParams RandomConvParams(Rng& rng) {
  ConvLayerParams p;
  p.c = rng.UniformInt(1, 128);
  p.k = rng.UniformInt(1, 128);
  p.iy = rng.UniformInt(3, 64);
  p.ix = rng.UniformInt(3, 64);
  p.kh = p.kw = rng.UniformInt(0, 1) ? 3 : 1;
  p.stride = rng.UniformInt(0, 3) ? 1 : 2;
  p.same_padding = rng.UniformInt(0, 1) == 1;
  if (rng.UniformInt(0, 4) == 0) {
    p.depthwise = true;
    p.k = p.c;
    p.kh = p.kw = 3;
  }
  return p;
}

// The structural invariants every accepted solution must satisfy:
// tiles fit in L1, the grid covers the tensor exactly once (n_* is the
// ceiling division, so no tile is dropped and none is scheduled twice),
// and no tile dimension collapses to zero.
void CheckSolutionInvariants(const AccelLayerSpec& spec,
                             const TileSolution& sol, i64 budget,
                             const std::string& context) {
  // Eq. 2: the live buffer set fits strictly inside the budget.
  EXPECT_LT(sol.l1_bytes, budget) << context;
  EXPECT_GT(sol.l1_bytes, 0) << context;

  // No zero-size tiles, and no tile exceeds the layer dimension.
  EXPECT_GE(sol.c_t, 1) << context;
  EXPECT_GE(sol.k_t, 1) << context;
  EXPECT_GE(sol.oy_t, 1) << context;
  EXPECT_GE(sol.ox_t, 1) << context;
  EXPECT_LE(sol.c_t, spec.c) << context;
  EXPECT_LE(sol.k_t, spec.k) << context;
  EXPECT_LE(sol.oy_t, spec.oy) << context;
  EXPECT_LE(sol.ox_t, spec.ox) << context;

  // Exactly-once coverage: the grid is the ceiling division of each dim,
  // so (n-1) full tiles plus a final (possibly partial, non-empty) tile
  // tile the tensor with no overlap and no gap. For dwconv/add the output
  // channels ride with the input channels (k_t == c_t), so their k grid is
  // the c grid and n_k stays 1.
  const bool k_follows_c =
      spec.kind == LayerKind::kDwConv2d || spec.kind == LayerKind::kAdd;
  EXPECT_EQ(sol.n_c, CeilDiv(spec.c, sol.c_t)) << context;
  EXPECT_EQ(sol.n_k, k_follows_c ? 1 : CeilDiv(spec.k, sol.k_t)) << context;
  EXPECT_EQ(sol.n_y, CeilDiv(spec.oy, sol.oy_t)) << context;
  EXPECT_EQ(sol.n_x, CeilDiv(spec.ox, sol.ox_t)) << context;
  EXPECT_GT(spec.c - (sol.n_c - 1) * sol.c_t, 0) << context;
  if (!k_follows_c) {
    EXPECT_GT(spec.k - (sol.n_k - 1) * sol.k_t, 0) << context;
  }
  EXPECT_GT(spec.oy - (sol.n_y - 1) * sol.oy_t, 0) << context;
  EXPECT_GT(spec.ox - (sol.n_x - 1) * sol.ox_t, 0) << context;

  // An untiled solution must be the whole layer; a tiled one must not be.
  if (!sol.needs_tiling) {
    EXPECT_EQ(sol.TileCount(), 1) << context;
    EXPECT_EQ(sol.c_t, spec.c) << context;
    EXPECT_EQ(sol.k_t, spec.k) << context;
  } else {
    EXPECT_GT(sol.TileCount(), 1) << context;
  }

  // psum accounting is tied to channel tiling for reducing kinds.
  if (sol.psum) EXPECT_LT(sol.c_t, spec.c) << context;
}

TEST(TilerProperty, RandomConvLayersSatisfyInvariants) {
  Rng rng(0xD0121ull);
  const i64 budgets[] = {2 * 1024, 8 * 1024, 32 * 1024, 256 * 1024};
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const ConvLayerParams p = RandomConvParams(rng);
    const auto spec = MakeConvSpec(p);
    const i64 budget = budgets[trial % 4];
    const std::string context = StrFormat(
        "trial %d: c=%lld k=%lld iy=%lld ix=%lld kh=%lld s=%lld dw=%d "
        "budget=%lld",
        trial, p.c, p.k, p.iy, p.ix, p.kh, p.stride, p.depthwise ? 1 : 0,
        budget);
    auto sol = SolveTiling(spec, kCfg, AccelTarget::kDigital,
                           WithBudget(budget));
    if (!sol.ok()) {
      // The only acceptable failure is a typed resource-exhausted report.
      EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted)
          << context;
      continue;
    }
    ++solved;
    CheckSolutionInvariants(spec, *sol, budget, context);
    if (spec.kind == LayerKind::kDwConv2d) {
      EXPECT_EQ(sol->k_t, sol->c_t) << context;
      EXPECT_EQ(sol->n_k, 1) << context;
      EXPECT_FALSE(sol->psum) << context;
    }
  }
  // The generator must actually exercise the solver, not just the
  // infeasible path.
  EXPECT_GT(solved, 100);
}

TEST(TilerProperty, RandomAnalogLayersNeverTileChannels) {
  Rng rng(0xA7A106ull);
  int solved = 0;
  for (int trial = 0; trial < 100; ++trial) {
    ConvLayerParams p = RandomConvParams(rng);
    p.depthwise = false;
    p.k = rng.UniformInt(1, 128);
    p.weight_dtype = DType::kTernary;
    const auto spec = MakeConvSpec(p);
    const i64 budget = 32 * 1024;
    const std::string context =
        StrFormat("trial %d: c=%lld k=%lld iy=%lld ix=%lld", trial, p.c, p.k,
                  p.iy, p.ix);
    auto sol =
        SolveTiling(spec, kCfg, AccelTarget::kAnalog, WithBudget(budget));
    if (!sol.ok()) {
      EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted)
          << context;
      continue;
    }
    ++solved;
    CheckSolutionInvariants(spec, *sol, budget, context);
    // The analog macro spatially unrolls the full input patch: channels are
    // never split and there are no partial sums.
    EXPECT_EQ(sol->c_t, spec.c) << context;
    EXPECT_EQ(sol->n_c, 1) << context;
    EXPECT_FALSE(sol->psum) << context;
  }
  EXPECT_GT(solved, 30);
}

TEST(TilerProperty, RandomDenseLayersSatisfyInvariants) {
  Rng rng(0xDE25Eull);
  int solved = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const i64 in = rng.UniformInt(1, 2048);
    const i64 out = rng.UniformInt(1, 512);
    const auto spec = MakeDenseSpec(in, out);
    const i64 budget = (trial % 2) ? 16 * 1024 : 64 * 1024;
    const std::string context =
        StrFormat("trial %d: in=%lld out=%lld budget=%lld", trial, in, out,
                  budget);
    auto sol =
        SolveTiling(spec, kCfg, AccelTarget::kDigital, WithBudget(budget));
    if (!sol.ok()) {
      EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted)
          << context;
      continue;
    }
    ++solved;
    CheckSolutionInvariants(spec, *sol, budget, context);
  }
  EXPECT_GT(solved, 50);
}

}  // namespace
}  // namespace htvm::dory

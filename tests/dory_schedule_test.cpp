#include <gtest/gtest.h>

#include <set>

#include "dory/schedule.hpp"
#include "models/layer_zoo.hpp"

namespace htvm::dory {
namespace {

using models::ConvLayerParams;
using models::MakeConvSpec;
using models::MakeDenseSpec;

const hw::DianaConfig kCfg = hw::DianaConfig::Default();

TilerOptions WithBudget(i64 bytes) {
  TilerOptions o;
  o.l1_budget_bytes = bytes;
  return o;
}

// Tiles must partition the output exactly: every (k, y, x) output element
// covered by exactly one last_c step, every input channel by one c step.
void CheckCoverage(const AccelLayerSpec& spec, const AccelSchedule& sched) {
  std::set<std::tuple<i64, i64, i64>> covered;
  for (const TileStep& s : sched.steps) {
    if (!s.last_c) continue;
    for (i64 k = 0; k < s.k_t; ++k) {
      for (i64 y = 0; y < s.oy_t; ++y) {
        for (i64 x = 0; x < s.ox_t; ++x) {
          const i64 kk = (spec.kind == LayerKind::kDwConv2d ||
                          spec.kind == LayerKind::kAdd)
                             ? s.c0 + k
                             : s.k0 + k;
          auto key = std::make_tuple(kk, s.y0 + y, s.x0 + x);
          EXPECT_TRUE(covered.insert(key).second)
              << "output element covered twice";
        }
      }
    }
  }
  EXPECT_EQ(static_cast<i64>(covered.size()), spec.k * spec.oy * spec.ox);
}

TEST(Schedule, UntiledLayerIsOneStep) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 16;
  auto sched = BuildSchedule(MakeConvSpec(p), kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->steps.size(), 1u);
  EXPECT_TRUE(sched->steps[0].first_c && sched->steps[0].last_c);
}

TEST(Schedule, TiledConvCoversOutputExactly) {
  ConvLayerParams p;
  p.c = 32;
  p.k = 48;
  p.iy = p.ix = 24;  // non-divisible tiles force edge remainders
  const auto spec = MakeConvSpec(p);
  auto sched =
      BuildSchedule(spec, kCfg, AccelTarget::kDigital, WithBudget(8 * 1024));
  ASSERT_TRUE(sched.ok());
  EXPECT_GT(sched->steps.size(), 1u);
  CheckCoverage(spec, *sched);
}

TEST(Schedule, DwConvCoversChannels) {
  ConvLayerParams p;
  p.depthwise = true;
  p.c = 48;
  p.iy = p.ix = 32;
  const auto spec = MakeConvSpec(p);
  auto sched =
      BuildSchedule(spec, kCfg, AccelTarget::kDigital, WithBudget(8 * 1024));
  ASSERT_TRUE(sched.ok());
  CheckCoverage(spec, *sched);
}

TEST(Schedule, DenseCoversOutputs) {
  const auto spec = MakeDenseSpec(640, 128);
  auto sched = BuildSchedule(spec, kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sched.ok());
  CheckCoverage(spec, *sched);
}

TEST(Schedule, PeakIncludesWeightDmaOnly) {
  ConvLayerParams p;
  p.c = 32;
  p.k = 32;
  p.iy = p.ix = 32;
  auto sched = BuildSchedule(MakeConvSpec(p), kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->peak_cycles,
            sched->compute_cycles + sched->weight_dma_cycles);
  EXPECT_EQ(sched->full_cycles, sched->peak_cycles +
                                    sched->exposed_act_cycles +
                                    sched->overhead_cycles);
  EXPECT_GT(sched->weight_dma_cycles, 0);
}

TEST(Schedule, DoubleBufferHidesMiddleDma) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 48;
  const auto spec = MakeConvSpec(p);
  TilerOptions db = WithBudget(32 * 1024);
  db.double_buffer = true;
  TilerOptions nodb = db;
  nodb.double_buffer = false;
  auto with = BuildSchedule(spec, kCfg, AccelTarget::kDigital, db);
  auto without = BuildSchedule(spec, kCfg, AccelTarget::kDigital, nodb);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_LE(with->exposed_act_cycles, with->act_dma_cycles);
  // Without double buffering everything is exposed.
  EXPECT_EQ(without->exposed_act_cycles, without->act_dma_cycles);
}

TEST(Schedule, AnalogWeightLoadChargedOnce) {
  ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 48;
  p.weight_dtype = DType::kTernary;
  const auto spec = MakeConvSpec(p);
  auto sched = BuildSchedule(spec, kCfg, AccelTarget::kAnalog,
                             WithBudget(32 * 1024));
  ASSERT_TRUE(sched.ok());
  ASSERT_GT(sched->steps.size(), 1u);
  i64 steps_with_load = 0;
  for (const TileStep& s : sched->steps) {
    if (s.weight_dma_cycles > 0) ++steps_with_load;
  }
  EXPECT_EQ(steps_with_load, 1);
}

TEST(Schedule, NonResidentWeightsReloadPerSpatialTile) {
  // 640x128 dense: weights exceed the 64 kB digital weight memory, so every
  // (k, c) tile pays DMA on each visit — the FC overhead effect.
  const auto spec = MakeDenseSpec(640, 128);
  auto sched = BuildSchedule(spec, kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sched.ok());
  i64 w_dma_steps = 0;
  for (const TileStep& s : sched->steps) {
    if (s.weight_dma_cycles > 0) ++w_dma_steps;
  }
  EXPECT_EQ(w_dma_steps, static_cast<i64>(sched->steps.size()));
}

TEST(Schedule, MacsMatchSpec) {
  ConvLayerParams p;
  p.c = 16;
  p.k = 32;
  p.iy = p.ix = 20;
  const auto spec = MakeConvSpec(p);
  auto sched = BuildSchedule(spec, kCfg, AccelTarget::kDigital, {});
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->macs, spec.Macs());
  EXPECT_EQ(spec.Macs(), 32 * 16 * 20 * 20 * 9);
}

TEST(Schedule, HeuristicsReduceLatencyOnConstrainedBudget) {
  // The Fig. 4 effect: same layer, same budget, heuristics on vs off.
  ConvLayerParams p;
  p.c = 96;
  p.k = 96;
  p.iy = p.ix = 24;
  const auto spec = MakeConvSpec(p);
  TilerOptions on = WithBudget(16 * 1024);
  TilerOptions off = on;
  off.enable_pe_heuristics = false;
  off.enable_dma_heuristic = false;
  auto s_on = BuildSchedule(spec, kCfg, AccelTarget::kDigital, on);
  auto s_off = BuildSchedule(spec, kCfg, AccelTarget::kDigital, off);
  ASSERT_TRUE(s_on.ok() && s_off.ok());
  EXPECT_LE(s_on->full_cycles, s_off->full_cycles);
}

}  // namespace
}  // namespace htvm::dory

#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"
#include "nn/interpreter.hpp"
#include "runtime/executor.hpp"
#include "runtime/verify.hpp"

namespace htvm::runtime {
namespace {

using compiler::CompileOptions;
using compiler::HtvmCompiler;

TEST(Executor, DigitalConvBitExactVsReference) {
  models::ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  Graph g = models::MakeConvLayerGraph(p);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(g);
  ASSERT_TRUE(art.ok());
  Rng rng(1);
  const Tensor input = Tensor::Random(Shape{1, 16, 32, 32}, DType::kInt8, rng);
  auto report = VerifyArtifact(*art, g, std::vector<Tensor>{input});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bit_exact);
}

TEST(Executor, TiledSimulationMatchesInterpreterPath) {
  models::ConvLayerParams p;
  p.c = 32;
  p.k = 32;
  p.iy = p.ix = 24;
  CompileOptions opt = CompileOptions::DigitalOnly();
  opt.tiler.l1_budget_bytes = 4 * 1024;  // force real tiling
  Graph g = models::MakeConvLayerGraph(p);
  auto art = HtvmCompiler{opt}.Compile(g);
  ASSERT_TRUE(art.ok());
  ASSERT_GT(art->kernels[0].schedule->steps.size(), 1u);

  Rng rng(2);
  const Tensor input = Tensor::Random(Shape{1, 32, 24, 24}, DType::kInt8, rng);
  Executor fast(&*art, {.simulate_tiles = false});
  Executor tiled(&*art, {.simulate_tiles = true});
  auto a = fast.Run(std::vector<Tensor>{input});
  auto b = tiled.Run(std::vector<Tensor>{input});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->outputs[0].SameAs(b->outputs[0]));
}

TEST(Executor, AnalogDiffersButBounded) {
  models::ConvLayerParams p;
  p.weight_dtype = DType::kTernary;
  Graph g = models::MakeConvLayerGraph(p);
  auto art = HtvmCompiler{CompileOptions::AnalogOnly()}.Compile(g);
  ASSERT_TRUE(art.ok());
  Rng rng(3);
  const Tensor input = Tensor::Random(Shape{1, 16, 32, 32}, DType::kInt8, rng);
  auto report = VerifyArtifact(*art, g, std::vector<Tensor>{input});
  ASSERT_TRUE(report.ok());
  // 7-bit input clamping makes analog execution approximate.
  EXPECT_FALSE(report->bit_exact);
  EXPECT_GT(report->total_elements, 0);
}

TEST(Executor, OomArtifactRefusesToRun) {
  Graph net = models::BuildMobileNetV1(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::PlainTvm()}.Compile(net);
  ASSERT_TRUE(art.ok());
  ASSERT_FALSE(art->memory_plan.fits);
  Executor ex(&*art);
  Rng rng(4);
  const Tensor input = Tensor::Random(Shape{1, 3, 96, 96}, DType::kInt8, rng);
  auto result = ex.Run(std::vector<Tensor>{input});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Executor, LatencyMatchesArtifactTotals) {
  Graph net = models::BuildToyAdmosDae(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  Executor ex(&*art);
  Rng rng(5);
  const Tensor input = Tensor::Random(Shape{1, 640}, DType::kInt8, rng);
  auto result = ex.Run(std::vector<Tensor>{input});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_cycles, art->TotalFullCycles());
  EXPECT_GT(result->latency_ms, 0.0);
  EXPECT_EQ(result->profile.kernels.size(), art->kernels.size());
}

TEST(Executor, EndToEndResNetDigitalBitExact) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  Rng rng(6);
  const Tensor input = Tensor::Random(Shape{1, 3, 32, 32}, DType::kInt8, rng);
  auto report = VerifyArtifact(*art, net, std::vector<Tensor>{input});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->bit_exact) << report->mismatched_elements << " of "
                                 << report->total_elements << " differ";
}

TEST(Executor, EndToEndResNetTiledSimulationBitExact) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  Rng rng(7);
  const Tensor input = Tensor::Random(Shape{1, 3, 32, 32}, DType::kInt8, rng);
  auto report = VerifyArtifact(*art, net, std::vector<Tensor>{input},
                               /*simulate_tiles=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->bit_exact);
}

TEST(Executor, InputCountMismatchRejected) {
  Graph net = models::BuildToyAdmosDae(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  Executor ex(&*art);
  auto result = ex.Run(std::vector<Tensor>{});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace htvm::runtime

#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"

namespace htvm::compiler {
namespace {

std::map<std::string, i64> KernelTargets(const Artifact& a) {
  std::map<std::string, i64> counts;
  for (const auto& k : a.kernels) ++counts[k.target];
  return counts;
}

TEST(Pipeline, SingleConvDigital) {
  models::ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  HtvmCompiler compiler{CompileOptions{}};
  auto art = compiler.Compile(models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok()) << art.status().ToString();
  ASSERT_EQ(art->kernels.size(), 1u);
  EXPECT_EQ(art->kernels[0].target, "digital");
  EXPECT_TRUE(art->kernels[0].schedule.has_value());
  EXPECT_GT(art->kernels[0].perf.peak_cycles, 0);
  EXPECT_GT(art->kernels[0].perf.full_cycles,
            art->kernels[0].perf.peak_cycles);
}

TEST(Pipeline, SingleConvPlainTvmStaysOnCpu) {
  models::ConvLayerParams p;
  HtvmCompiler compiler{CompileOptions::PlainTvm()};
  auto art = compiler.Compile(models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok());
  ASSERT_EQ(art->kernels.size(), 1u);
  EXPECT_EQ(art->kernels[0].target, "cpu");
  EXPECT_FALSE(art->kernels[0].schedule.has_value());
}

TEST(Pipeline, TernaryConvGoesAnalogAndGetsClamped) {
  models::ConvLayerParams p;
  p.weight_dtype = DType::kTernary;
  HtvmCompiler compiler{CompileOptions{}};
  auto art = compiler.Compile(models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok());
  ASSERT_EQ(art->kernels.size(), 1u);
  EXPECT_EQ(art->kernels[0].target, "analog");
  // The body's first op after the input must be the 7-bit clamp.
  const Node& comp = art->kernel_graph.node(art->kernels[0].node);
  bool has_clamp = false;
  for (const Node& n : comp.body->nodes()) {
    if (n.IsOp("clip") && n.attrs.GetInt("a_min", 0) == -64 &&
        n.attrs.GetInt("a_max", 0) == 63) {
      has_clamp = true;
    }
  }
  EXPECT_TRUE(has_clamp);
}

TEST(Pipeline, DigitalAccelFasterThanCpuOnSameLayer) {
  models::ConvLayerParams p;
  p.c = 32;
  p.k = 32;
  p.iy = p.ix = 32;
  Graph g = models::MakeConvLayerGraph(p);
  auto digital = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(g);
  auto cpu = HtvmCompiler{CompileOptions::PlainTvm()}.Compile(g);
  ASSERT_TRUE(digital.ok() && cpu.ok());
  EXPECT_LT(digital->TotalFullCycles() * 10, cpu->TotalFullCycles());
}

TEST(Pipeline, ResNetMixedUsesBothAccelerators) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  HtvmCompiler compiler{CompileOptions{}};
  auto art = compiler.Compile(net);
  ASSERT_TRUE(art.ok()) << art.status().ToString();
  const auto targets = KernelTargets(*art);
  EXPECT_GT(targets.at("digital"), 0);
  EXPECT_GT(targets.at("analog"), 0);
  EXPECT_GT(targets.at("cpu"), 0);  // pool/softmax epilogue
}

TEST(Pipeline, ResNetDigitalOffloadsEverythingEligible) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  const auto targets = KernelTargets(*art);
  // 10 weighted layers (9 convs + FC) + 3 residual adds on the accelerator.
  EXPECT_EQ(targets.at("digital"), 13);
  EXPECT_EQ(targets.count("analog"), 0u);
}

TEST(Pipeline, DsCnnAnalogLeavesDwOnCpu) {
  Graph net = models::BuildDsCnn(models::PrecisionPolicy::kTernary);
  auto art = HtvmCompiler{CompileOptions::AnalogOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  i64 cpu_dw = 0;
  for (const auto& k : art->kernels) {
    if (k.target == "cpu" && k.perf.macs > 0) ++cpu_dw;
  }
  EXPECT_GE(cpu_dw, 4);  // the four depthwise layers fall back
  EXPECT_GT(KernelTargets(*art).at("analog"), 0);
}

TEST(Pipeline, BinarySizeBreakdownPositive) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  EXPECT_GT(art->size.runtime_bytes, 0);
  EXPECT_GT(art->size.code_bytes, 0);
  EXPECT_GT(art->size.weight_bytes, 50 * 1024);  // ~78k params
  EXPECT_LT(art->size.Total(), 200 * 1024);
}

TEST(Pipeline, KernelGraphValidates) {
  Graph net = models::BuildDsCnn(models::PrecisionPolicy::kInt8);
  auto art = HtvmCompiler{CompileOptions::DigitalOnly()}.Compile(net);
  ASSERT_TRUE(art.ok());
  EXPECT_TRUE(art->kernel_graph.Validate().ok());
  // Kernel order matches node order (sequential program of Fig. 2).
  for (size_t i = 1; i < art->kernels.size(); ++i) {
    EXPECT_LT(art->kernels[i - 1].node, art->kernels[i].node);
  }
}

TEST(Pipeline, TilerOptionsPropagate) {
  models::ConvLayerParams p;
  p.c = 64;
  p.k = 64;
  p.iy = p.ix = 64;
  CompileOptions opt = CompileOptions::DigitalOnly();
  opt.tiler.l1_budget_bytes = 8 * 1024;
  auto art = HtvmCompiler{opt}.Compile(models::MakeConvLayerGraph(p));
  ASSERT_TRUE(art.ok());
  ASSERT_TRUE(art->kernels[0].schedule.has_value());
  EXPECT_GT(art->kernels[0].schedule->steps.size(), 4u);
  EXPECT_LT(art->kernels[0].schedule->solution.l1_bytes, 8 * 1024);
}

}  // namespace
}  // namespace htvm::compiler

#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"
#include "runtime/energy.hpp"

namespace htvm::runtime {
namespace {

using compiler::CompileOptions;
using compiler::HtvmCompiler;
using models::PrecisionPolicy;

compiler::Artifact MustCompile(const Graph& g, const CompileOptions& opt) {
  auto art = HtvmCompiler{opt}.Compile(g);
  HTVM_CHECK_MSG(art.ok(), "compile failed");
  return std::move(art.value());
}

TEST(Energy, BreakdownSumsToTotal) {
  Graph net = models::BuildResNet8(PrecisionPolicy::kMixed);
  const auto art = MustCompile(net, CompileOptions{});
  const EnergyReport r = EstimateEnergy(art);
  double per_kernel = 0.0;
  for (const auto& k : r.kernels) per_kernel += k.pj;
  EXPECT_NEAR(per_kernel, r.total_pj, 1.0);
  EXPECT_NEAR(r.cpu_pj + r.digital_pj + r.analog_pj + r.dma_pj + r.idle_pj,
              r.total_pj, 1.0);
  EXPECT_GT(r.TotalUj(), 0.0);
}

TEST(Energy, AcceleratedInferenceUsesLessEnergyThanCpu) {
  // The Sec. I claim: accelerators reduce energy by over an order of
  // magnitude vs the general-purpose core.
  Graph net = models::BuildResNet8(PrecisionPolicy::kInt8);
  const auto cpu = MustCompile(net, CompileOptions::PlainTvm());
  const auto dig = MustCompile(net, CompileOptions::DigitalOnly());
  const double cpu_uj = EstimateEnergy(cpu).TotalUj();
  const double dig_uj = EstimateEnergy(dig).TotalUj();
  EXPECT_GT(cpu_uj, 10.0 * dig_uj)
      << "cpu " << cpu_uj << " uJ vs digital " << dig_uj << " uJ";
}

TEST(Energy, AnalogMoreEfficientPerMacOnConvLayer) {
  models::ConvLayerParams p;
  p.c = p.k = 64;
  p.iy = p.ix = 16;
  Graph int8net = models::MakeConvLayerGraph(p);
  p.weight_dtype = DType::kTernary;
  Graph ternary = models::MakeConvLayerGraph(p);
  const auto dig = MustCompile(int8net, CompileOptions::DigitalOnly());
  const auto ana = MustCompile(ternary, CompileOptions::AnalogOnly());
  const i64 macs = dig.Profile().TotalMacs();
  const double dig_tw = EstimateEnergy(dig).TopsPerWatt(macs, 260.0);
  const double ana_tw = EstimateEnergy(ana).TopsPerWatt(macs, 260.0);
  EXPECT_GT(ana_tw, dig_tw);
  // Digital sits in the TOPS/W class DIANA reports.
  EXPECT_GT(dig_tw, 0.5);
  EXPECT_LT(dig_tw, 20.0);
}

TEST(Energy, IdleHostCheaperThanActiveHost) {
  EnergyConfig cfg;
  EXPECT_LT(cfg.idle_pj_per_cycle, cfg.cpu_pj_per_cycle);
}

TEST(Energy, ReportRenders) {
  Graph net = models::BuildDsCnn(PrecisionPolicy::kMixed);
  const auto art = MustCompile(net, CompileOptions{});
  const std::string text = EstimateEnergy(art).ToString();
  EXPECT_NE(text.find("energy"), std::string::npos);
  EXPECT_NE(text.find("uJ"), std::string::npos);
}

}  // namespace
}  // namespace htvm::runtime

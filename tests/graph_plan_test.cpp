// The graph-level schedule-search contract (docs/schedule_search.md
// "Graph-level search"):
//
//   1. The GraphPlan text form round-trips, and every malformed input —
//      including the corrupted HAB plan sections the fuzz battery mutates —
//      comes back as a typed InvalidArgument, never a crash.
//   2. 50-seed property battery: on random networks across every registered
//      SoC, the graph-beam plan never loses to the heuristic partitioning
//      on simulated latency (the heuristic plan is always a finalist),
//      executes bit-exact with the heuristic-plan artifact, and is
//      deterministic across CompileKernels thread counts.
//   3. Searched plans are memoized per (partitioned graph x SoC x search
//      problem): a second compile that misses the artifact cache performs
//      zero plan or schedule evaluations.
//   4. Capability gating: a plan searched for a reduced SoC never contains
//      a dispatch decision the SoC cannot execute, and decisions the search
//      must not touch (analog composites, whose bodies the clamp pass
//      rewrites) are pinned to the heuristic choice.
//   5. The plan survives both artifact serializations (v1 text, HAB), and
//      a HAB whose embedded plan names a different SoC than the artifact is
//      refused with a typed error.
//   6. The default heuristic partitioning for the layer zoo, the MLPerf
//      Tiny suite and the TinyTransformer is pinned as goldens under
//      tests/golden/plan/ (regenerate with --update-golden or
//      HTVM_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "cache/artifact_serialize.hpp"
#include "compiler/emit.hpp"
#include "compiler/pipeline.hpp"
#include "compiler/plan_search.hpp"
#include "dory/graph_plan.hpp"
#include "dory/schedule_search.hpp"
#include "hw/soc.hpp"
#include "ir/builder.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"
#include "models/transformer.hpp"
#include "runtime/executor.hpp"
#include "runtime/verify.hpp"
#include "support/rng.hpp"
#include "vm/hab.hpp"

#ifndef HTVM_GOLDEN_DIR
#error "HTVM_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace htvm {
namespace {

bool g_update_golden = false;

// Random conv-chain network biased toward fusable adjacent pairs: stacks of
// channel-matched conv blocks, occasionally broken by a pool or residual
// add so the battery also exercises plans with unfusable boundaries.
Graph RandomNetwork(Rng& rng, Shape* in_shape) {
  GraphBuilder b(rng.NextU64());
  i64 c = static_cast<i64>(rng.UniformInt(1, 3)) * 8;
  i64 hw = static_cast<i64>(rng.UniformInt(8, 16));
  *in_shape = Shape{1, c, hw, hw};
  NodeId x = b.Input("x", *in_shape);
  const i64 stages = rng.UniformInt(3, 6);
  NodeId residual = kInvalidNode;
  for (i64 s = 0; s < stages; ++s) {
    switch (rng.UniformInt(0, 4)) {
      case 0:
      case 1: {  // conv (twice as likely: fusion needs adjacent convs)
        ConvSpec spec;
        spec.out_channels = static_cast<i64>(rng.UniformInt(1, 3)) * 8;
        spec.kernel_h = spec.kernel_w = rng.UniformInt(0, 1) ? 3 : 1;
        spec.relu = rng.UniformInt(0, 1) == 1;
        spec.shift = rng.UniformInt(4, 8);
        spec = WithSamePadding(spec, hw, hw);
        residual = x;
        x = b.ConvBlock(x, spec, "conv" + std::to_string(s));
        c = spec.out_channels;
        break;
      }
      case 2: {  // depthwise
        ConvSpec spec;
        spec.depthwise = true;
        spec.relu = true;
        spec = WithSamePadding(spec, hw, hw);
        x = b.ConvBlock(x, spec, "dw" + std::to_string(s));
        break;
      }
      case 3: {  // residual add when shapes allow (an unfusable boundary)
        if (residual != kInvalidNode &&
            b.graph().node(residual).type == b.graph().node(x).type) {
          x = b.AddBlock(residual, x, /*relu=*/true, /*shift=*/1);
        } else {
          x = b.graph().AddOp("nn.relu", {x});
        }
        break;
      }
      default: {  // pool (shrinks spatial dims, breaks the conv chain)
        if (hw >= 4) {
          x = b.MaxPool(x, 2, 2);
          hw /= 2;
        }
        break;
      }
    }
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.DenseBlock(x, 4, /*relu=*/false, 6);
  return b.Finish(x);
}

compiler::Artifact MustCompile(const Graph& net,
                               const compiler::CompileOptions& opt) {
  auto art = compiler::HtvmCompiler{opt}.Compile(net);
  HTVM_CHECK_MSG(art.ok(), "compile failed");
  return std::move(art.value());
}

// ---------------------------------------------------------------------------
// 1. GraphPlan text form: round-trip + typed errors on malformed input
// ---------------------------------------------------------------------------

TEST(GraphPlanFormat, SerializeDeserializeRoundTrip) {
  dory::GraphPlan plan;
  plan.soc_name = "diana-l2x2";
  plan.decisions = {
      {"diana.conv2d", "digital", /*fuse_with_next=*/true},
      {"diana.conv2d", "digital", false},
      {"diana.add", "cpu", false},
      {"diana.conv2d", "analog", false},
  };
  auto back = dory::GraphPlan::Deserialize(plan.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, plan);
  EXPECT_EQ(back->FusedPairs(), 1);
  EXPECT_EQ(back->CpuDecisions(), 1);
  EXPECT_EQ(back->Fingerprint(), plan.Fingerprint());

  // The empty plan round-trips too (units=0, no unit lines).
  dory::GraphPlan empty;
  auto eback = dory::GraphPlan::Deserialize(empty.Serialize());
  ASSERT_TRUE(eback.ok());
  EXPECT_TRUE(eback->empty());
}

TEST(GraphPlanFormat, MalformedInputsAreTypedErrors) {
  const char* kBad[] = {
      "",
      "garbage",
      "graph-plan v2 soc=diana units=0",          // unknown version
      "graph-plan v1 soc=diana",                  // missing units
      "graph-plan v1 units=0",                    // missing soc
      "graph-plan v1 soc=diana units=1",          // truncated unit list
      "graph-plan v1 soc=diana units=-3",         // negative count
      "graph-plan v1 soc=diana units=9999999",    // absurd count
      "graph-plan v1 soc=bad name units=0",       // soc with a space
      "graph-plan v1 soc=diana units=1\nunit p gpu fuse=0",    // bad target
      "graph-plan v1 soc=diana units=1\nunit p cpu fuse=2",    // bad flag
      "graph-plan v1 soc=diana units=1\nunit p cpu fuse=1",    // fuse @ last
      "graph-plan v1 soc=diana units=2\n"
      "unit a digital fuse=1\nunit b cpu fuse=0",  // fused pair, two engines
      "graph-plan v1 soc=diana units=3\nunit a digital fuse=1\n"
      "unit b digital fuse=1\nunit c digital fuse=0",  // fusion chain
      "graph-plan v1 soc=diana units=1\n"
      "unit p cpu fuse=0\ntrailing garbage",       // trailing data
  };
  for (const char* text : kBad) {
    auto plan = dory::GraphPlan::Deserialize(text);
    ASSERT_FALSE(plan.ok()) << "accepted: " << text;
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

// ---------------------------------------------------------------------------
// 2. 50-seed property battery
// ---------------------------------------------------------------------------

TEST(GraphPlan, FiftySeedSearchProperty) {
  const std::vector<std::string> socs = hw::SocRegistry::Global().Names();
  ASSERT_GE(socs.size(), 6u);
  constexpr int kSeeds = 50;
  i64 fused_total = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0x6F97A110ull + static_cast<u64>(seed));
    Shape in_shape;
    const Graph net = RandomNetwork(rng, &in_shape);
    ASSERT_TRUE(net.Validate().ok());
    const hw::SocDescription soc =
        *hw::FindSoc(socs[static_cast<size_t>(seed) % socs.size()]);

    compiler::CompileOptions base;  // mixed: widest dispatch coverage
    base.soc = soc;
    const compiler::Artifact heuristic = MustCompile(net, base);
    // The default path must stay plan-free (and thus byte-identical to
    // every pre-graph-search serialization).
    EXPECT_TRUE(heuristic.plan.empty()) << "seed " << seed;

    compiler::CompileOptions opt = base;
    opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
    const compiler::Artifact searched = MustCompile(net, opt);
    ASSERT_FALSE(searched.plan.empty()) << "seed " << seed;
    EXPECT_EQ(searched.plan.soc_name, soc.name) << "seed " << seed;
    fused_total += searched.plan.FusedPairs();

    // Match-or-beat on the artifact's own reported latency: the heuristic
    // plan is always finalist 0, so the searched artifact can never be
    // slower.
    EXPECT_LE(searched.TotalFullCycles(), heuristic.TotalFullCycles())
        << "seed " << seed << " on " << soc.name;

    // Bit-exact: repartitioning, fusing and dispatch-flipping must not
    // change a single output byte relative to the heuristic deployment.
    Rng data_rng(static_cast<u64>(seed) * 977 + 13);
    const std::vector<Tensor> inputs = {
        Tensor::Random(in_shape, DType::kInt8, data_rng)};
    const runtime::Executor he(&heuristic);
    const runtime::Executor se(&searched);
    auto hout = he.Run(inputs);
    auto sout = se.Run(inputs);
    ASSERT_TRUE(hout.ok()) << hout.status().ToString();
    ASSERT_TRUE(sout.ok()) << sout.status().ToString();
    ASSERT_EQ(hout->outputs.size(), sout->outputs.size());
    for (size_t i = 0; i < hout->outputs.size(); ++i) {
      EXPECT_TRUE(sout->outputs[i].SameAs(hout->outputs[i]))
          << "seed " << seed << " output " << i
          << ": searched plan diverged from heuristic execution";
    }
    // And against the reference interpreter: wherever the heuristic
    // deployment is bit-exact, the searched one must be too.
    auto href = runtime::VerifyArtifact(heuristic, net, inputs);
    auto sref = runtime::VerifyArtifact(searched, net, inputs);
    ASSERT_TRUE(href.ok()) << href.status().ToString();
    ASSERT_TRUE(sref.ok()) << sref.status().ToString();
    if (href->bit_exact) {
      EXPECT_TRUE(sref->bit_exact) << "seed " << seed;
    }

    // Thread-count determinism, sampled across the battery: the plan is
    // searched before CompileKernels fans out, so the lane count must be
    // invisible in the artifact.
    if (seed % 10 == 0) {
      compiler::CompileOptions par = opt;
      par.compile_threads = 4;
      const compiler::Artifact parallel = MustCompile(net, par);
      EXPECT_EQ(cache::SerializeArtifactForDiff(searched),
                cache::SerializeArtifactForDiff(parallel))
          << "seed " << seed;
      EXPECT_EQ(parallel.plan, searched.plan) << "seed " << seed;
    }
  }
  // The sweep must genuinely exercise fusion, not just keep/flip decisions.
  EXPECT_GE(fused_total, 5);
}

// ---------------------------------------------------------------------------
// 3. Plan memoization
// ---------------------------------------------------------------------------

TEST(GraphPlan, MemoizedSecondCompilePerformsZeroEvaluations) {
  const Graph net = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  cache::ArtifactCache cache;
  compiler::CompileOptions opt;
  opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
  opt.cache = &cache;

  dory::ScheduleSearchStats::Global().Reset();
  const compiler::Artifact first = MustCompile(net, opt);
  ASSERT_GT(dory::ScheduleSearchStats::Global().TotalEvals(), 0)
      << "cold compile must actually search";
  ASSERT_GT(cache.stats().plan_entries, 0);
  ASSERT_FALSE(first.plan.empty());

  // Perturb an option the plan/schedule memo keys ignore (code-size
  // model): the artifact-level key misses, the whole pipeline reruns, but
  // the plan and every layer schedule are served from the memos.
  opt.size_model.tvm_runtime_bytes += 1;
  dory::ScheduleSearchStats::Global().Reset();
  const compiler::Artifact second = MustCompile(net, opt);
  EXPECT_EQ(dory::ScheduleSearchStats::Global().TotalEvals(), 0)
      << "memoized compile re-searched";
  EXPECT_GT(dory::ScheduleSearchStats::Global().memo_hits(), 0);
  EXPECT_GT(cache.stats().plan_hits, 0);
  EXPECT_EQ(second.plan, first.plan);
  EXPECT_EQ(cache::SerializeArtifactForDiff(first),
            cache::SerializeArtifactForDiff(second));
}

// ---------------------------------------------------------------------------
// 4. Capability gating
// ---------------------------------------------------------------------------

TEST(GraphPlan, ReducedSocsNeverGetForbiddenDispatchDecisions) {
  for (const char* soc_name : {"diana-noanalog", "diana-scalar"}) {
    const hw::SocDescription soc = *hw::FindSoc(soc_name);
    for (const auto& model : models::MlperfTinySuite()) {
      const Graph net = model.build(models::PrecisionPolicy::kMixed);
      compiler::CompileOptions opt;
      opt.soc = soc;
      opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
      const compiler::Artifact art = MustCompile(net, opt);
      for (const dory::PlanDecision& d : art.plan.decisions) {
        if (d.target == "analog") {
          EXPECT_TRUE(soc.has_analog)
              << model.name << " on " << soc_name
              << ": plan dispatches to an absent analog engine";
        }
        if (d.target == "digital" || d.fuse_with_next) {
          EXPECT_TRUE(soc.has_digital)
              << model.name << " on " << soc_name
              << ": plan dispatches to an absent digital engine";
        }
      }
    }
  }
}

TEST(GraphPlan, AnalogDecisionsArePinnedToTheHeuristic) {
  // The clamp pass rewrites analog composite bodies, so the search must
  // never move work onto or off the analog array: those decisions are
  // pinned, only digital composites may flip or fuse.
  const Graph net = models::BuildMobileNetV1(models::PrecisionPolicy::kMixed);
  compiler::CompileOptions opt;  // default diana: analog present
  auto heuristic = compiler::HeuristicGraphPlan(net, opt);
  ASSERT_TRUE(heuristic.ok()) << heuristic.status().ToString();
  opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
  const compiler::Artifact art = MustCompile(net, opt);
  ASSERT_EQ(art.plan.decisions.size(), heuristic->decisions.size());
  int analog = 0;
  for (size_t i = 0; i < art.plan.decisions.size(); ++i) {
    if (heuristic->decisions[i].target != "analog") continue;
    ++analog;
    EXPECT_EQ(art.plan.decisions[i].target, "analog") << "unit " << i;
    EXPECT_FALSE(art.plan.decisions[i].fuse_with_next) << "unit " << i;
  }
  ASSERT_GT(analog, 0) << "mixed MobileNet must dispatch analog layers";
}

// ---------------------------------------------------------------------------
// 5. Serialization: v1 text, HAB, cross-SoC refusal
// ---------------------------------------------------------------------------

TEST(GraphPlan, PlanSurvivesTextArtifactRoundTrip) {
  const Graph net = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  compiler::CompileOptions opt;
  opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
  const compiler::Artifact art = MustCompile(net, opt);
  ASSERT_FALSE(art.plan.empty());
  auto back = cache::DeserializeArtifact(cache::SerializeArtifact(art));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->plan, art.plan);

  // A heuristic artifact serializes with no plan record at all.
  const compiler::Artifact plain = MustCompile(net, compiler::CompileOptions{});
  EXPECT_EQ(cache::SerializeArtifact(plain).find("\nplan "),
            std::string::npos);
}

TEST(GraphPlan, PlanSurvivesHabRoundTrip) {
  const Graph net = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  compiler::CompileOptions opt;
  opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
  const compiler::Artifact art = MustCompile(net, opt);
  ASSERT_FALSE(art.plan.empty());
  const std::string image = vm::SerializeHab(art, {});
  auto parsed = vm::ParseHab(
      {reinterpret_cast<const u8*>(image.data()), image.size()});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->artifact.plan, art.plan);
}

TEST(GraphPlan, HabWithCrossSocPlanIsRefused) {
  const Graph net = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  compiler::CompileOptions opt;
  opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
  compiler::Artifact art = MustCompile(net, opt);
  ASSERT_FALSE(art.plan.empty());
  ASSERT_EQ(art.plan.soc_name, "diana");
  // Forge an artifact claiming SoC B while its plan was searched for SoC A
  // (what a buggy producer or a spliced file would present). The loader
  // must refuse — replaying A's fusion/dispatch decisions on B would be
  // silently wrong — with a typed error naming both SoCs, which is also
  // what `htvm-run --soc B` surfaces when handed such a file.
  art.soc_name = "diana-l2x2";
  const std::string image = vm::SerializeHab(art, {});
  auto parsed = vm::ParseHab(
      {reinterpret_cast<const u8*>(image.data()), image.size()});
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  const std::string msg = parsed.status().ToString();
  EXPECT_NE(msg.find("diana-l2x2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("refusing"), std::string::npos) << msg;
}

// A planned artifact is still deployable as C: the diana.fused2 pair lowers
// through the generic straight-line body emitter (conv2d loops included),
// and the whole emitted tree compiles with the host C compiler.
TEST(GraphPlan, EmittedFusedDeploymentCompiles) {
  const Graph net = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  compiler::CompileOptions opt;
  opt.schedule_search.kind = dory::ScheduleSearchKind::kGraphBeam;
  const compiler::Artifact art = MustCompile(net, opt);
  ASSERT_GT(art.plan.FusedPairs(), 0);
  auto emitted = compiler::EmitArtifactC(art, "dscnn");
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();
  const std::string& c = emitted->files.at("dscnn.c");
  EXPECT_NE(c.find("diana_fused2"), std::string::npos);
  EXPECT_NE(c.find("= conv2d("), std::string::npos);
  const std::string check = "command -v cc > /dev/null";
  if (std::system(check.c_str()) != 0) GTEST_SKIP() << "no host C compiler";
  const std::string dir = ::testing::TempDir() + "/htvm_plan_emit";
  std::system(("mkdir -p " + dir).c_str());
  ASSERT_TRUE(emitted->WriteTo(dir).ok());
  const std::string cmd = "cc -std=c11 -O0 -c -o " + dir + "/dscnn.o " + dir +
                          "/dscnn.c 2> " + dir + "/cc.log";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "emitted planned C failed to compile; see " << dir << "/cc.log";
}

// ---------------------------------------------------------------------------
// 6. Golden-pinned heuristic partitioning (default diana)
// ---------------------------------------------------------------------------

std::string PlanGoldenPath(const std::string& name) {
  return std::string(HTVM_GOLDEN_DIR) + "/plan/" + name + ".plan";
}

void CheckPlanGolden(const Graph& net, const std::string& name) {
  auto plan = compiler::HeuristicGraphPlan(net, compiler::CompileOptions{});
  ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
  const std::string text = plan->Serialize();
  const std::string path = PlanGoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << text;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "cannot open " << path
      << "\n(run with --update-golden to generate the reference)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str())
      << "default heuristic partitioning of " << name << " drifted from "
      << path
      << "\nIf the change is intentional, regenerate with --update-golden "
         "and commit the diff.";
}

TEST(GraphPlanGolden, LayerZooHeuristicPartitioningIsPinned) {
  models::ConvLayerParams p;
  p.c = 16;
  p.k = 16;
  p.iy = p.ix = 16;
  CheckPlanGolden(models::MakeConvLayerGraph(p), "conv16");
  CheckPlanGolden(models::MakeDenseLayerGraph(64, 10), "dense64x10");
}

TEST(GraphPlanGolden, MlperfTinyHeuristicPartitioningIsPinned) {
  for (const auto& model : models::MlperfTinySuite()) {
    CheckPlanGolden(model.build(models::PrecisionPolicy::kMixed), model.name);
  }
}

TEST(GraphPlanGolden, TinyTransformerHeuristicPartitioningIsPinned) {
  CheckPlanGolden(models::TinyTransformer(/*depth=*/1, /*heads=*/2,
                                          /*d_model=*/32, /*seq_len=*/16),
                  "TinyTransformer");
}

}  // namespace
}  // namespace htvm

// Custom main: gtest_main's main() is only linked when none is defined, so
// providing one here is safe and gives us the --update-golden escape hatch.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      htvm::g_update_golden = true;
    }
  }
  const char* env = std::getenv("HTVM_UPDATE_GOLDEN");
  if (env != nullptr && std::string(env) == "1") {
    htvm::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "compiler/compile_passes.hpp"
#include "compiler/pass_manager.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"

namespace htvm::compiler {
namespace {

std::vector<std::string> TimelineNames(const PassTimeline& timeline) {
  std::vector<std::string> names;
  for (const PassStat& stat : timeline) names.push_back(stat.name);
  return names;
}

std::map<std::string, std::string> ReadDir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    files[entry.path().filename().string()] = ss.str();
  }
  return files;
}

// The pipeline is a fixed, ordered sequence of named passes; a change here
// is an intentional pipeline change and must update this snapshot (and
// docs/compiler_passes.md).
TEST(PassManager, PipelineSnapshot) {
  const std::vector<std::string> expected = {
      "AbsorbPadding",  "ConstantFold",      "PartitionGraph",
      "InsertAnalogInputClamps", "LowerToKernels", "CompileKernels",
      "ComputeBinarySize", "PlanL2Memory",   "FinalizeArtifact"};
  EXPECT_EQ(HtvmPassNames(), expected);
}

TEST(PassManager, TimelineRecordsEveryPassWithNodeDeltas) {
  const Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  auto art = HtvmCompiler{CompileOptions{}}.Compile(net);
  ASSERT_TRUE(art.ok()) << art.status().ToString();
  EXPECT_EQ(TimelineNames(art->pass_timeline), HtvmPassNames());

  i64 total_ns = 0;
  for (const PassStat& stat : art->pass_timeline) {
    EXPECT_GE(stat.wall_ns, 0) << stat.name;
    EXPECT_GT(stat.nodes_before, 0) << stat.name;
    EXPECT_GT(stat.nodes_after, 0) << stat.name;
    total_ns += stat.wall_ns;
  }
  EXPECT_GT(total_ns, 0);

  // The front-end pass sees the whole input network; partitioning collapses
  // matched chains into composites; artifact-only passes leave the graph
  // untouched.
  EXPECT_EQ(art->pass_timeline.front().nodes_before, net.NumNodes());
  const PassStat& partition = art->pass_timeline[2];
  EXPECT_EQ(partition.name, "PartitionGraph");
  EXPECT_LT(partition.nodes_after, partition.nodes_before);
  const PassStat& kernels = art->pass_timeline[5];
  EXPECT_EQ(kernels.name, "CompileKernels");
  EXPECT_EQ(kernels.nodes_after, kernels.nodes_before);

  const std::string table = PassTimelineToTable(art->pass_timeline);
  EXPECT_NE(table.find("PartitionGraph"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(PassManager, InterPassValidationCatchesCorruptedGraph) {
  CompileOptions options;
  CompileState state(options);
  state.graph = models::MakeConvLayerGraph(models::ConvLayerParams{});

  PassManager pm;
  pm.Add("CorruptTypes", [](CompileState& s) {
    for (const Node& n : s.graph.nodes()) {
      if (n.kind != NodeKind::kOp) continue;
      // Stored type no longer matches re-running inference.
      s.graph.mutable_node(n.id).type =
          TensorType{Shape{1, 2, 3}, DType::kInt32};
      break;
    }
    return Status::Ok();
  });

  const Status status = pm.Run(state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("CorruptTypes"), std::string::npos);

  // With verification off the corruption sails through (the knob exists so
  // the cost can be measured, not for production use).
  CompileState unchecked(options);
  unchecked.graph = models::MakeConvLayerGraph(models::ConvLayerParams{});
  PassInstrumentation no_verify;
  no_verify.verify = false;
  EXPECT_TRUE(pm.Run(unchecked, no_verify).ok());
}

TEST(PassManager, FailingPassIsNamedInStatus) {
  CompileOptions options;
  CompileState state(options);
  state.graph = models::MakeConvLayerGraph(models::ConvLayerParams{});

  PassManager pm;
  pm.Add("Explode",
         [](CompileState&) { return Status::Unsupported("boom"); });
  const Status status = pm.Run(state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
  EXPECT_NE(status.message().find("pass Explode: boom"), std::string::npos);
}

TEST(PassManager, DumpFilesDeterministicAcrossRuns) {
  const Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  const std::string dir_a = ::testing::TempDir() + "/pm_dump_a";
  const std::string dir_b = ::testing::TempDir() + "/pm_dump_b";
  for (const std::string& dir : {dir_a, dir_b}) {
    std::filesystem::remove_all(dir);
    CompileOptions opt;
    opt.instrument.dump_ir_dir = dir;
    auto art = HtvmCompiler{opt}.Compile(net);
    ASSERT_TRUE(art.ok()) << art.status().ToString();
  }
  const auto files_a = ReadDir(dir_a);
  const auto files_b = ReadDir(dir_b);
  // Input + the graph-rewriting passes that changed the graph, one .txt and
  // one .dot each. AbsorbPadding and ConstantFold report no change on the
  // already-folded resnet and are skipped — skipped passes write no dump
  // (their output is the previous file).
  EXPECT_EQ(files_a.size(), 8u);
  EXPECT_EQ(files_a, files_b);
  EXPECT_EQ(files_a.count("00_input.txt"), 1u);
  EXPECT_EQ(files_a.count("01_AbsorbPadding.txt"), 0u);
  EXPECT_EQ(files_a.count("03_PartitionGraph.dot"), 1u);
  EXPECT_EQ(files_a.count("05_LowerToKernels.txt"), 1u);
  for (const auto& [name, content] : files_a) {
    EXPECT_FALSE(content.empty()) << name;
  }
}

TEST(PassManager, UnwritableDumpDirFailsCompile) {
  const std::string blocker = ::testing::TempDir() + "/pm_dump_blocker";
  std::ofstream(blocker) << "not a directory";
  CompileOptions opt;
  opt.instrument.dump_ir_dir = blocker;
  auto art = HtvmCompiler{opt}.Compile(
      models::MakeConvLayerGraph(models::ConvLayerParams{}));
  ASSERT_FALSE(art.ok());
  EXPECT_NE(art.status().message().find("cannot write IR dump"),
            std::string::npos);
}

}  // namespace
}  // namespace htvm::compiler

// Link-layer proof that the deployable VM surface is compiler-free.
//
// This test target links htvm_vm + htvm_runtime + htvm_artifact (and their
// deps) but NOT htvm_compiler — tests/CMakeLists.txt wires it without the
// compiler library and the top-level htvm_assert_compiler_free() check
// walks the closure at configure time. If any vm/runtime code grows a
// compiler symbol dependency, this target stops linking.
//
// Functionally it exercises the whole compiler-free path: hand-build an
// artifact, serialize to HAB bytes, parse, execute through VmExecutor, and
// check the interpreter semantics survived the trip.
#include <gtest/gtest.h>

#include "nn/interpreter.hpp"
#include "vm/hab.hpp"
#include "vm/vm_executor.hpp"

namespace htvm::vm {
namespace {

// Minimal deployable artifact: one CPU kernel whose composite body is
// input -> nn.relu.
compiler::Artifact MakeReluArtifact() {
  auto body = std::make_shared<Graph>();
  const NodeId bin = body->AddInput("x", {Shape{1, 8}, DType::kInt8});
  const NodeId brelu = body->AddOp("nn.relu", {bin});
  body->SetOutputs({brelu});

  compiler::Artifact a;
  Graph& g = a.kernel_graph;
  const NodeId in = g.AddInput("x", {Shape{1, 8}, DType::kInt8});
  const NodeId comp = g.AddComposite("cpu.relu", {in}, body);
  g.SetOutputs({comp});

  compiler::CompiledKernel kernel;
  kernel.name = "cpu.relu#0";
  kernel.target = "cpu";
  kernel.node = comp;
  kernel.perf.name = kernel.name;
  kernel.perf.target = kernel.target;
  kernel.perf.full_cycles = 100;
  kernel.perf.peak_cycles = 100;
  a.kernels.push_back(std::move(kernel));
  a.memory_plan.fits = true;
  a.memory_plan.arena_bytes = 64;
  a.memory_plan.total_l2_bytes = 64;
  return a;
}

TEST(VmLink, HabRoundTripAndExecuteWithoutCompiler) {
  const compiler::Artifact a = MakeReluArtifact();
  HabMeta meta;
  meta.model_name = "relu-micro";
  meta.producer = "vm_link_test";
  const std::string bytes = SerializeHab(a, meta);
  ASSERT_TRUE(LooksLikeHab(bytes));

  auto loaded = LoadedArtifact::FromBuffer(std::span<const u8>(
      reinterpret_cast<const u8*>(bytes.data()), bytes.size()));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta().model_name, "relu-micro");
  EXPECT_EQ(loaded->meta().producer, "vm_link_test");

  // Serialization is deterministic and parse reconstructs identical state.
  EXPECT_EQ(SerializeHab(loaded->artifact(), loaded->meta()), bytes);

  const VmExecutor executor(std::move(*loaded));
  Rng rng(11);
  const Tensor input = Tensor::Random(Shape{1, 8}, DType::kInt8, rng);
  auto result = executor.Run(std::vector<Tensor>{input});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->outputs.size(), 1u);

  // Same bytes as interpreting the body directly.
  auto reference = nn::RunGraph(*a.kernel_graph.node(1).body,
                                std::vector<Tensor>{input});
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(result->outputs[0].SameAs((*reference)[0]));
  EXPECT_EQ(result->total_cycles, 100);
}

TEST(VmLink, SyntheticInputsAreDeterministic) {
  const compiler::Artifact a = MakeReluArtifact();
  const std::vector<Tensor> x = SyntheticInputs(a, 42);
  const std::vector<Tensor> y = SyntheticInputs(a, 42);
  const std::vector<Tensor> z = SyntheticInputs(a, 43);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_TRUE(x[0].SameAs(y[0]));
  EXPECT_FALSE(x[0].SameAs(z[0]));
}

}  // namespace
}  // namespace htvm::vm

#include <gtest/gtest.h>

#include "cache/artifact_serialize.hpp"
#include "compiler/pipeline.hpp"
#include "hw/soc.hpp"
#include "ir/builder.hpp"
#include "ir/serialize.hpp"
#include "models/mlperf_tiny.hpp"
#include "nn/interpreter.hpp"

namespace htvm {
namespace {

void ExpectRoundTrip(const Graph& g, const Shape& in_shape,
                     DType in_dtype = DType::kInt8, u64 seed = 5) {
  const std::string text = SerializeGraph(g);
  auto back = DeserializeGraph(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumNodes(), g.NumNodes());
  // Same function: run both on the same input.
  Rng rng(seed);
  const Tensor input = Tensor::Random(in_shape, in_dtype, rng);
  auto a = nn::RunGraph(g, std::vector<Tensor>{input});
  auto b = nn::RunGraph(*back, std::vector<Tensor>{input});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.value()[0].SameAs(b.value()[0]));
}

TEST(Serialize, ConvBlockRoundTrip) {
  GraphBuilder b(1);
  NodeId x = b.Input("x", Shape{1, 4, 8, 8});
  ConvSpec spec;
  spec.out_channels = 8;
  spec = WithSamePadding(spec, 8, 8);
  Graph g = b.Finish(b.ConvBlock(x, spec, "conv with space"));
  ExpectRoundTrip(g, Shape{1, 4, 8, 8});
}

TEST(Serialize, ResNetRoundTrip) {
  Graph g = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  ExpectRoundTrip(g, Shape{1, 3, 32, 32});
}

TEST(Serialize, TernaryConstantsSurvive) {
  Graph g = models::BuildToyAdmosDae(models::PrecisionPolicy::kTernary);
  const std::string text = SerializeGraph(g);
  EXPECT_NE(text.find("ternary"), std::string::npos);
  auto back = DeserializeGraph(text);
  ASSERT_TRUE(back.ok());
  i64 ternary_consts = 0;
  for (const Node& n : back->nodes()) {
    if (n.kind == NodeKind::kConstant &&
        n.value.dtype() == DType::kTernary) {
      ++ternary_consts;
    }
  }
  EXPECT_GT(ternary_consts, 0);
}

TEST(Serialize, AttrsOfAllKindsRoundTrip) {
  Graph g;
  NodeId x = g.AddInput("x", {Shape{1, 4, 8, 8}, DType::kInt8});
  NodeId p = g.AddOp("nn.avg_pool2d", {x},
                     AttrMap{{"pool_size", std::vector<i64>{2, 2}},
                             {"strides", std::vector<i64>{2, 2}},
                             {"padding", std::vector<i64>{0, 0, 0, 0}}});
  NodeId c = g.AddOp("cast", {p}, AttrMap{{"dtype", std::string("int8")}});
  g.SetOutputs({c});
  auto back = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(back.ok());
  const Node* cast = nullptr;
  for (const Node& n : back->nodes()) {
    if (n.IsOp("cast")) cast = &n;
  }
  ASSERT_NE(cast, nullptr);
  EXPECT_EQ(cast->attrs.GetString("dtype"), "int8");
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_FALSE(DeserializeGraph("not a graph").ok());
  EXPECT_FALSE(DeserializeGraph("htvm-graph v1\nop nn.bogus 0 0\n").ok());
  EXPECT_FALSE(DeserializeGraph("htvm-graph v1\ninput x int8 1 4\n").ok());
}

TEST(Serialize, RejectsTruncatedConstant) {
  const std::string text =
      "htvm-graph v1\nconst w int8 1 4 1 2 3\noutput 1 0\n";
  EXPECT_FALSE(DeserializeGraph(text).ok());
}

TEST(Serialize, ArtifactVersionSkewIsTypedAndSpecific) {
  // A well-formed header for a future (or past) format version must produce
  // an Unsupported status naming the version seen — not the generic
  // "missing header" corruption message.
  auto future = cache::DeserializeArtifact("htvm-artifact v9\nhw 1 2\n");
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(future.status().ToString().find("htvm-artifact v9"),
            std::string::npos);
  EXPECT_NE(future.status().ToString().find("version skew"),
            std::string::npos);

  // Garbage that never was an artifact header stays InvalidArgument.
  auto garbage = cache::DeserializeArtifact("definitely not an artifact");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(garbage.status().ToString().find("missing htvm-artifact v1"),
            std::string::npos);
}

TEST(Serialize, ArtifactSocNameRoundTripsAndDefaultsToDiana) {
  GraphBuilder b(3);
  NodeId x = b.Input("x", Shape{1, 16});
  const Graph g = b.Finish(b.DenseBlock(x, 4, /*relu=*/true));

  // Default-SoC artifacts serialize with no soc record at all — the text is
  // byte-identical to what pre-SoC-family writers produced — and soc-less
  // text loads as "diana".
  auto diana = compiler::HtvmCompiler{{}}.Compile(g);
  ASSERT_TRUE(diana.ok());
  const std::string diana_text = cache::SerializeArtifact(*diana);
  EXPECT_EQ(diana_text.find("\nsoc "), std::string::npos);
  auto diana_back = cache::DeserializeArtifact(diana_text);
  ASSERT_TRUE(diana_back.ok());
  EXPECT_EQ(diana_back->soc_name, "diana");

  // Non-default SoCs write one soc record after the header and round-trip.
  compiler::CompileOptions options;
  options.soc = *hw::FindSoc("diana-l2x2");
  auto variant = compiler::HtvmCompiler{options}.Compile(g);
  ASSERT_TRUE(variant.ok());
  const std::string variant_text = cache::SerializeArtifact(*variant);
  EXPECT_NE(variant_text.find("soc diana-l2x2\n"), std::string::npos);
  auto variant_back = cache::DeserializeArtifact(variant_text);
  ASSERT_TRUE(variant_back.ok()) << variant_back.status().ToString();
  EXPECT_EQ(variant_back->soc_name, "diana-l2x2");
  EXPECT_EQ(cache::SerializeArtifact(*variant_back), variant_text);

  // An explicit "soc diana" record is non-canonical (two spellings of the
  // same artifact would break content addressing) and is rejected.
  const size_t header_end = diana_text.find('\n') + 1;
  const std::string non_canonical = diana_text.substr(0, header_end) +
                                    "soc diana\n" +
                                    diana_text.substr(header_end);
  auto rejected = cache::DeserializeArtifact(non_canonical);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(Serialize, FileRoundTrip) {
  GraphBuilder b(2);
  NodeId x = b.Input("x", Shape{1, 16});
  Graph g = b.Finish(b.DenseBlock(x, 4, /*relu=*/true));
  const std::string path = ::testing::TempDir() + "/htvm_graph.txt";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto back = LoadGraph(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumNodes(), g.NumNodes());
}

TEST(Serialize, FuzzedInputNeverCrashes) {
  // Random mutations of a valid serialization must be rejected gracefully
  // (or accepted, if the mutation happened to stay valid) — never abort.
  GraphBuilder b(5);
  NodeId x = b.Input("x", Shape{1, 4, 6, 6});
  ConvSpec spec;
  spec.out_channels = 4;
  spec = WithSamePadding(spec, 6, 6);
  Graph g = b.Finish(b.ConvBlock(x, spec, "c"));
  const std::string base = SerializeGraph(g);

  Rng rng(0x5EED);
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, static_cast<i64>(text.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          text[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
      }
    }
    auto result = DeserializeGraph(text);
    if (result.ok()) {
      ++accepted;
      EXPECT_TRUE(result->Validate().ok());
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);  // mutations do break things
  (void)accepted;
}

TEST(Serialize, PadOpRoundTrips) {
  Graph g;
  NodeId x = g.AddInput("x", {Shape{1, 2, 4, 4}, DType::kInt8});
  NodeId p = g.AddOp("nn.pad", {x},
                     AttrMap{{"pad_width", std::vector<i64>{1, 1, 1, 1}}});
  g.SetOutputs({p});
  auto back = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->node(back->outputs()[0]).type.shape, (Shape{1, 2, 6, 6}));
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  GraphBuilder b(3);
  NodeId x = b.Input("x", Shape{1, 8});
  Graph g = b.Finish(b.graph().AddOp("nn.relu", {x}));
  std::string text = SerializeGraph(g);
  text.insert(text.find('\n') + 1, "# a comment\n\n");
  auto back = DeserializeGraph(text);
  EXPECT_TRUE(back.ok());
}

}  // namespace
}  // namespace htvm

// C code emission tests: structural checks on generated kernels, and an
// end-to-end proof that an emitted CPU-only deployment compiles with the
// host C compiler and computes bit-exactly what the reference interpreter
// computes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "compiler/emit.hpp"
#include "compiler/pipeline.hpp"
#include "dory/c_codegen.hpp"
#include "models/layer_zoo.hpp"
#include "models/mlperf_tiny.hpp"
#include "nn/interpreter.hpp"
#include "support/string_utils.hpp"

namespace htvm {
namespace {

using compiler::CompileOptions;
using compiler::EmitArtifactC;
using compiler::HtvmCompiler;

compiler::Artifact MustCompile(const Graph& g, const CompileOptions& opt) {
  auto art = HtvmCompiler{opt}.Compile(g);
  HTVM_CHECK_MSG(art.ok(), "compile failed");
  return std::move(art.value());
}

TEST(AccelCodegen, ConvKernelStructure) {
  models::ConvLayerParams p;
  p.c = 32;
  p.k = 32;
  p.iy = p.ix = 32;
  CompileOptions opt = CompileOptions::DigitalOnly();
  opt.tiler.l1_budget_bytes = 16 * 1024;  // force tiling
  const auto art = MustCompile(models::MakeConvLayerGraph(p), opt);
  auto emitted = EmitArtifactC(art, "convnet");
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();
  const std::string& c = emitted->files.at("convnet.c");
  // Tile loop nest, DMA programming, driver call, weight offset table.
  EXPECT_NE(c.find("for (int kt = 0; kt < NK; ++kt)"), std::string::npos);
  EXPECT_NE(c.find("htvm_dma_2d"), std::string::npos);
  EXPECT_NE(c.find("diana_digital_conv2d"), std::string::npos);
  EXPECT_NE(c.find("w_off"), std::string::npos);
  EXPECT_NE(c.find("convnet_run"), std::string::npos);
  EXPECT_NE(c.find("l2_arena"), std::string::npos);
}

TEST(AccelCodegen, AnalogKernelLoadsMacroOnce) {
  models::ConvLayerParams p;
  p.weight_dtype = DType::kTernary;
  const auto art =
      MustCompile(models::MakeConvLayerGraph(p), CompileOptions::AnalogOnly());
  auto emitted = EmitArtifactC(art, "ana");
  ASSERT_TRUE(emitted.ok());
  const std::string& c = emitted->files.at("ana.c");
  EXPECT_NE(c.find("diana_analog_load_weights"), std::string::npos);
  EXPECT_NE(c.find("diana_analog_conv2d"), std::string::npos);
  // Packed ternary weights emitted as bytes.
  EXPECT_NE(c.find("static const uint8_t"), std::string::npos);
}

TEST(AccelCodegen, TileMajorWeightsIsAPermutation) {
  models::ConvLayerParams p;
  p.c = 24;
  p.k = 40;
  p.iy = p.ix = 16;
  const hw::DianaConfig cfg;
  dory::TilerOptions o;
  o.l1_budget_bytes = 4 * 1024;
  auto sched = dory::BuildSchedule(models::MakeConvSpec(p), cfg,
                                   dory::AccelTarget::kDigital, o);
  ASSERT_TRUE(sched.ok());
  Rng rng(3);
  Tensor w = Tensor::Random(Shape{40, 24, 3, 3}, DType::kInt8, rng);
  Tensor tiled = dory::TileMajorWeights(*sched, w);
  ASSERT_EQ(tiled.NumElements(), w.NumElements());
  std::vector<i8> a(w.data<i8>().begin(), w.data<i8>().end());
  std::vector<i8> b(tiled.data<i8>().begin(), tiled.data<i8>().end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // Offsets cover the whole tensor.
  const auto offs = dory::TileMajorWeightOffsets(*sched);
  ASSERT_FALSE(offs.empty());
  EXPECT_EQ(offs.front(), 0);
  for (size_t i = 1; i < offs.size(); ++i) EXPECT_GT(offs[i], offs[i - 1]);
  EXPECT_LT(offs.back(), w.NumElements());
}

TEST(Codegen, EveryMlperfConfigEmits) {
  for (const auto& model : models::MlperfTinySuite()) {
    struct Cfg {
      models::PrecisionPolicy policy;
      CompileOptions opt;
    };
    const Cfg cfgs[] = {
        {models::PrecisionPolicy::kInt8, CompileOptions::PlainTvm()},
        {models::PrecisionPolicy::kInt8, CompileOptions::DigitalOnly()},
        {models::PrecisionPolicy::kTernary, CompileOptions::AnalogOnly()},
        {models::PrecisionPolicy::kMixed, CompileOptions{}},
    };
    for (const auto& cfg : cfgs) {
      const auto art = MustCompile(model.build(cfg.policy), cfg.opt);
      auto emitted = EmitArtifactC(art, "net");
      EXPECT_TRUE(emitted.ok())
          << model.name << ": " << emitted.status().ToString();
      if (emitted.ok()) {
        EXPECT_EQ(emitted->files.count("net.c"), 1u);
        EXPECT_EQ(emitted->files.count("htvm_runtime.h"), 1u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Host-execution test: emitted CPU-only code is real C computing real int8
// arithmetic — compile it with the host compiler, run it, compare with the
// reference interpreter bit-for-bit.
// ---------------------------------------------------------------------------

bool ToolAvailable(const char* cmd) {
  const std::string check = std::string("command -v ") + cmd + " > /dev/null";
  return std::system(check.c_str()) == 0;
}

TEST(Codegen, EmittedCpuDeploymentMatchesInterpreter) {
  if (!ToolAvailable("cc")) GTEST_SKIP() << "no host C compiler";

  // Small all-CPU deployment (plain TVM baseline).
  GraphBuilder b(11);
  NodeId x = b.Input("x", Shape{1, 4, 8, 8});
  ConvSpec c1;
  c1.out_channels = 8;
  c1 = WithSamePadding(c1, 8, 8);
  NodeId y = b.ConvBlock(x, c1, "c1");
  ConvSpec dwspec;
  dwspec.depthwise = true;
  dwspec = WithSamePadding(dwspec, 8, 8);
  y = b.ConvBlock(y, dwspec, "dw");
  y = b.GlobalAvgPool(y);
  y = b.Flatten(y);
  y = b.DenseBlock(y, 6, /*relu=*/false, 6, DType::kInt8, "fc");
  y = b.Softmax(y);
  Graph net = b.Finish(y);

  const auto art = MustCompile(net, CompileOptions::PlainTvm());
  auto emitted = EmitArtifactC(art, "testnet");
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();

  // Reference result.
  Rng rng(17);
  const Tensor input = Tensor::Random(Shape{1, 4, 8, 8}, DType::kInt8, rng);
  auto ref = nn::RunGraph(net, std::vector<Tensor>{input});
  ASSERT_TRUE(ref.ok());
  const Tensor& expected = ref.value()[0];

  // Write sources + a harness that prints the output bytes.
  const std::string dir = ::testing::TempDir() + "/htvm_emit_test";
  std::system(("mkdir -p " + dir).c_str());
  ASSERT_TRUE(emitted->WriteTo(dir).ok());
  {
    std::ofstream main_c(dir + "/main.c");
    main_c << "#include <stdio.h>\n#include \"testnet.h\"\n";
    main_c << "static const signed char input[] = {";
    for (i64 i = 0; i < input.NumElements(); ++i) {
      main_c << input.GetFlat(i) << (i + 1 < input.NumElements() ? "," : "");
    }
    main_c << "};\nint main(void) {\n";
    main_c << "  signed char out[" << expected.NumElements() << "];\n";
    main_c << "  testnet_run((const void*)input, out);\n";
    main_c << "  for (int i = 0; i < " << expected.NumElements()
           << "; ++i) printf(\"%d\\n\", (int)out[i]);\n  return 0;\n}\n";
  }
  const std::string bin = dir + "/testnet_bin";
  const std::string compile_cmd = "cc -std=c11 -O1 -o " + bin + " " + dir +
                                  "/testnet.c " + dir + "/main.c 2> " + dir +
                                  "/cc.log";
  ASSERT_EQ(std::system(compile_cmd.c_str()), 0)
      << "emitted C failed to compile; see " << dir << "/cc.log";

  const std::string out_file = dir + "/out.txt";
  ASSERT_EQ(std::system((bin + " > " + out_file).c_str()), 0);
  std::ifstream out_stream(out_file);
  for (i64 i = 0; i < expected.NumElements(); ++i) {
    int value = 9999;
    out_stream >> value;
    EXPECT_EQ(value, expected.GetFlat(i)) << "output element " << i;
  }
}

TEST(Codegen, EmittedAccelDeploymentCompiles) {
  if (!ToolAvailable("cc")) GTEST_SKIP() << "no host C compiler";
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  const auto art = MustCompile(net, CompileOptions{});
  auto emitted = EmitArtifactC(art, "resnet");
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();
  const std::string dir = ::testing::TempDir() + "/htvm_emit_resnet";
  std::system(("mkdir -p " + dir).c_str());
  ASSERT_TRUE(emitted->WriteTo(dir).ok());
  const std::string cmd = "cc -std=c11 -O0 -c -o " + dir + "/resnet.o " +
                          dir + "/resnet.c 2> " + dir + "/cc.log";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "emitted accelerated C failed to compile; see " << dir << "/cc.log";
}

}  // namespace
}  // namespace htvm

// Focused tests of the analog-IMC scheduling path and of non-default
// digital array configurations (the platform-porting story).
#include <gtest/gtest.h>

#include "dory/schedule.hpp"
#include "hw/analog_accel.hpp"
#include "hw/digital_accel.hpp"
#include "dory/tiled_exec.hpp"
#include "models/layer_zoo.hpp"
#include "nn/kernels.hpp"
#include "tensor/quantize.hpp"

namespace htvm::dory {
namespace {

using models::ConvLayerParams;
using models::MakeConvSpec;
using models::MakeDenseSpec;

const hw::DianaConfig kCfg = hw::DianaConfig::Default();

AccelLayerSpec TernaryConv(i64 c, i64 k, i64 hw) {
  ConvLayerParams p;
  p.c = c;
  p.k = k;
  p.iy = p.ix = hw;
  p.weight_dtype = DType::kTernary;
  return MakeConvSpec(p);
}

TEST(AnalogSchedule, PeakIncludesMacroSetupAndRowWrites) {
  auto sched = BuildSchedule(TernaryConv(16, 16, 16), kCfg,
                             AccelTarget::kAnalog, {});
  ASSERT_TRUE(sched.ok());
  // rows = 16*9 = 144 -> 192 aligned; load = setup + rows * write.
  const i64 expected_load = kCfg.analog.layer_setup_cycles +
                            192 * kCfg.analog.row_write_cycles;
  EXPECT_EQ(sched->weight_dma_cycles, expected_load);
  EXPECT_GE(sched->peak_cycles, expected_load);
}

TEST(AnalogSchedule, FixedCostAmortizesWithLayerSize) {
  auto small = BuildSchedule(TernaryConv(16, 16, 8), kCfg,
                             AccelTarget::kAnalog, {});
  auto large = BuildSchedule(TernaryConv(64, 64, 32), kCfg,
                             AccelTarget::kAnalog, {});
  ASSERT_TRUE(small.ok() && large.ok());
  const auto tp = [](const AccelSchedule& s) {
    return static_cast<double>(s.macs) / static_cast<double>(s.full_cycles);
  };
  // Throughput must grow steeply with size (weight load amortization) —
  // the Fig. 5 analog curve shape.
  EXPECT_GT(tp(*large), 10.0 * tp(*small));
}

TEST(AnalogSchedule, DenseAsOneByOneConv) {
  auto sched = BuildSchedule(MakeDenseSpec(640, 128, DType::kTernary), kCfg,
                             AccelTarget::kAnalog, {});
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(sched->steps.size(), 1u);  // 640 rows, 128 cols: single config
  EXPECT_GT(sched->weight_dma_cycles, 640 * kCfg.analog.row_write_cycles);
}

TEST(AnalogSchedule, ColumnTilingBeyond512Outputs) {
  auto sched = BuildSchedule(MakeDenseSpec(128, 1000, DType::kTernary), kCfg,
                             AccelTarget::kAnalog, {});
  ASSERT_TRUE(sched.ok());
  // 1000 > 512 columns: the cost model charges two macro loads.
  hw::AnalogLayerGeom g;
  g.k = 1000;
  g.c = 128;
  EXPECT_EQ(hw::AnalogMacroTiles(kCfg.analog, g), 2);
}

TEST(AnalogSchedule, TiledAnalogDenseBitExactWith7BitClamp) {
  const auto spec = MakeDenseSpec(256, 64, DType::kTernary);
  auto sched = BuildSchedule(spec, kCfg, AccelTarget::kAnalog, {});
  ASSERT_TRUE(sched.ok());
  Rng rng(9);
  const Tensor data = Tensor::Random(Shape{1, 256}, DType::kInt8, rng);
  const Tensor weight = Tensor::Random(Shape{64, 256}, DType::kTernary, rng);
  const Tensor bias = Tensor::Random(Shape{64}, DType::kInt32, rng);
  auto tiled = ExecuteTiled(*sched, std::vector<Tensor>{data}, &weight,
                            &bias);
  ASSERT_TRUE(tiled.ok());
  auto acc = nn::Dense(ClampTo7Bit(data), weight);
  ASSERT_TRUE(acc.ok());
  auto biased = nn::BiasAdd(*acc, bias, 1);
  ASSERT_TRUE(biased.ok());
  EXPECT_TRUE(tiled->SameAs(RequantizeTensor(*biased, spec.requant)));
}

TEST(PortedArray, HeuristicsFollowConfiguredPeGrid) {
  // On an 8x8 array the PE heuristic must prefer channel tiles that are
  // multiples of 8 (not 16).
  hw::DianaConfig cfg = kCfg;
  cfg.digital.pe_rows = 8;
  cfg.digital.pe_cols = 8;
  ConvLayerParams p;
  p.c = 24;  // multiple of 8, not of 16
  p.k = 24;
  p.iy = p.ix = 32;
  TilerOptions o;
  o.l1_budget_bytes = 8 * 1024;
  auto sol = SolveTiling(MakeConvSpec(p), cfg, AccelTarget::kDigital, o);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->c_t % 8, 0) << "c_t=" << sol->c_t;
}

TEST(PortedArray, SmallerArrayLowersPeak) {
  hw::DianaConfig small = kCfg;
  small.digital.pe_rows = 8;
  small.digital.pe_cols = 8;
  ConvLayerParams p;
  p.c = p.k = 32;
  p.iy = p.ix = 16;
  const auto spec = MakeConvSpec(p);
  auto big = BuildSchedule(spec, kCfg, AccelTarget::kDigital, {});
  auto tiny = BuildSchedule(spec, small, AccelTarget::kDigital, {});
  ASSERT_TRUE(big.ok() && tiny.ok());
  // 64 vs 256 MAC/cycle peak: ~4x compute cycles.
  EXPECT_NEAR(static_cast<double>(tiny->compute_cycles) /
                  static_cast<double>(big->compute_cycles),
              4.0, 0.8);
}

TEST(PortedArray, DigitalPeakScalesWithArray) {
  hw::DigitalConfig small;
  small.pe_rows = 8;
  small.pe_cols = 8;
  EXPECT_DOUBLE_EQ(hw::DigitalPeakMacsPerCycle(small), 64.0);
}

}  // namespace
}  // namespace htvm::dory

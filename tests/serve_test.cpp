// Tests for the serving subsystem: histogram/queue utilities, the
// deterministic fleet scheduler, the Poisson trace generator, and an
// end-to-end serving run over a real compiled artifact.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "compiler/pipeline.hpp"
#include "ir/builder.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "support/bounded_queue.hpp"
#include "support/histogram.hpp"

namespace htvm {
namespace {

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndBounded) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Log-bucketing bounds the relative error at ~6.7% (16 sub-buckets).
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.07);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.07);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), 10.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(LatencyHistogram, HugeValuesDoNotOverflowBuckets) {
  LatencyHistogram h;
  h.Record(9.0e18);  // near the top of the u64 bucket range
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 9.0e18);
}

// ------------------------------------------------------------ bounded queue

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  BoundedQueue<int> q(16);
  std::mutex mu;
  std::multiset<int> received;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        std::lock_guard<std::mutex> lock(mu);
        received.insert(*item);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(received.count(v), 1u) << "item " << v;
  }
}

// ---------------------------------------------------------------- scheduler

using serve::FleetScheduler;
using serve::InferRequest;
using serve::ScheduledBatch;
using serve::SchedulerOptions;

TEST(FleetScheduler, RejectsWhenQueueBoundHit) {
  FleetScheduler sched(SchedulerOptions{/*fleet_size=*/1,
                                        /*queue_capacity=*/2,
                                        /*max_batch=*/1});
  std::vector<ScheduledBatch> out;
  // r0 dispatches immediately; r1 and r2 fill the pending queue; r3 bounces.
  EXPECT_TRUE(sched.Offer(InferRequest{0, 0, 0.0}, 100.0, 0.0, &out));
  EXPECT_TRUE(sched.Offer(InferRequest{1, 0, 0.0}, 100.0, 0.0, &out));
  EXPECT_TRUE(sched.Offer(InferRequest{2, 0, 0.0}, 100.0, 0.0, &out));
  EXPECT_FALSE(sched.Offer(InferRequest{3, 0, 0.0}, 100.0, 0.0, &out));
  auto rest = sched.Flush();
  EXPECT_EQ(sched.admitted(), 3);
  EXPECT_EQ(sched.rejected(), 1);
  i64 dispatched = 0;
  for (const auto& b : out) dispatched += static_cast<i64>(b.requests.size());
  for (const auto& b : rest) dispatched += static_cast<i64>(b.requests.size());
  EXPECT_EQ(dispatched, 3);  // nothing admitted is ever lost
}

TEST(FleetScheduler, QueuedSameModelRequestsCoalesce) {
  FleetScheduler sched(SchedulerOptions{/*fleet_size=*/1,
                                        /*queue_capacity=*/16,
                                        /*max_batch=*/4});
  std::vector<ScheduledBatch> out;
  // r0 occupies the SoC until t=100; r1/r2 queue behind it and coalesce.
  EXPECT_TRUE(sched.Offer(InferRequest{0, 0, 0.0}, 100.0, 10.0, &out));
  EXPECT_TRUE(sched.Offer(InferRequest{1, 0, 1.0}, 100.0, 10.0, &out));
  EXPECT_TRUE(sched.Offer(InferRequest{2, 0, 2.0}, 100.0, 10.0, &out));
  auto rest = sched.Flush();
  ASSERT_EQ(out.size() + rest.size(), 2u);  // singleton r0, then {r1, r2}
  const ScheduledBatch& batch = rest.empty() ? out.back() : rest.back();
  ASSERT_EQ(batch.requests.size(), 2u);
  EXPECT_DOUBLE_EQ(batch.start_us, 100.0);
  // Second batch member saves its dispatch overhead: 100 + (100 - 10).
  EXPECT_DOUBLE_EQ(batch.done_us, 100.0 + 100.0 + 90.0);
  EXPECT_EQ(sched.max_batch_size(), 2);
}

TEST(FleetScheduler, SpreadsLoadAcrossFleet) {
  FleetScheduler sched(SchedulerOptions{/*fleet_size=*/2,
                                        /*queue_capacity=*/16,
                                        /*max_batch=*/1});
  std::vector<ScheduledBatch> out;
  EXPECT_TRUE(sched.Offer(InferRequest{0, 0, 0.0}, 100.0, 0.0, &out));
  EXPECT_TRUE(sched.Offer(InferRequest{1, 0, 0.0}, 100.0, 0.0, &out));
  auto rest = sched.Flush();
  for (const auto& b : rest) out.push_back(b);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].soc, out[1].soc);  // both run at t=0 on distinct SoCs
  EXPECT_DOUBLE_EQ(out[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(out[1].start_us, 0.0);
}

// -------------------------------------------------------------------- trace

TEST(PoissonTrace, DeterministicSortedAndPlausible) {
  const auto a = serve::PoissonTrace(1000.0, 1.0, 42, 3);
  const auto b = serve::PoissonTrace(1000.0, 1.0, 42, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].model, b[i].model);
  }
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
  }
  // ~1000 arrivals expected; allow +-20%.
  EXPECT_GT(a.size(), 800u);
  EXPECT_LT(a.size(), 1200u);
  const auto c = serve::PoissonTrace(1000.0, 1.0, 43, 3);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a[0].arrival_us, c[0].arrival_us);  // different seed, new trace
}

// ------------------------------------------------------------- end to end

std::shared_ptr<const compiler::Artifact> CompileSmallNet() {
  GraphBuilder b(3);
  NodeId x = b.Input("x", Shape{1, 8, 16, 16});
  ConvSpec spec;
  spec.out_channels = 16;
  x = b.ConvBlock(x, WithSamePadding(spec, 16, 16), "c");
  x = b.Flatten(b.GlobalAvgPool(x));
  x = b.DenseBlock(x, 10, /*relu=*/false);
  Graph net = b.Finish(x);
  auto artifact = compiler::HtvmCompiler{compiler::CompileOptions{}}.Compile(net);
  EXPECT_TRUE(artifact.ok()) << artifact.status().ToString();
  return std::make_shared<const compiler::Artifact>(std::move(*artifact));
}

serve::ServingMetrics ServeOnce(
    const std::shared_ptr<const compiler::Artifact>& artifact, double qps,
    int fleet, int queue_cap, u64 seed, double duration_s) {
  serve::ServerOptions options;
  options.fleet_size = fleet;
  options.queue_capacity = queue_cap;
  options.max_batch = 4;
  options.verify_outputs = true;
  serve::InferenceServer server(options);
  auto handle = server.RegisterModel("smallnet", artifact, seed);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  const auto trace = serve::PoissonTrace(qps, duration_s, seed, 1);
  server.Start();
  i64 rejects = 0;
  for (const auto& event : trace) {
    const Status s = server.Submit(event.model, event.arrival_us);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++rejects;
    }
  }
  auto metrics = server.Drain(duration_s);
  EXPECT_EQ(metrics.rejected, rejects);
  EXPECT_EQ(metrics.offered, static_cast<i64>(trace.size()));
  return metrics;
}

TEST(InferenceServer, DeterministicRunServesEveryAdmittedRequest) {
  const auto artifact = CompileSmallNet();
  const auto m = ServeOnce(artifact, /*qps=*/300, /*fleet=*/2,
                           /*queue_cap=*/64, /*seed=*/7, /*duration_s=*/0.5);
  EXPECT_GT(m.offered, 0);
  EXPECT_EQ(m.offered, m.admitted + m.rejected);
  EXPECT_EQ(m.served, m.admitted);  // zero lost requests
  EXPECT_EQ(m.exec_failures, 0);
  EXPECT_EQ(m.output_mismatches, 0);
  EXPECT_LE(m.latency_p50_us, m.latency_p95_us);
  EXPECT_LE(m.latency_p95_us, m.latency_p99_us);
  EXPECT_LE(m.latency_p99_us, m.latency_max_us);
  EXPECT_GT(m.throughput_rps, 0.0);
  for (const auto& s : m.socs) {
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
  }
}

TEST(InferenceServer, MetricsJsonIsByteStableAcrossRuns) {
  const auto artifact = CompileSmallNet();
  const auto a = ServeOnce(artifact, 300, 2, 64, 7, 0.5);
  const auto b = ServeOnce(artifact, 300, 2, 64, 7, 0.5);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_NE(a.ToJson().find("\"latency_us\""), std::string::npos);
  EXPECT_NE(a.ToJson().find("\"utilization\""), std::string::npos);
}

TEST(InferenceServer, OverloadHitsAdmissionControl) {
  const auto artifact = CompileSmallNet();
  // One SoC, tiny queue, offered load 8x the fleet's service capacity: the
  // bound must engage, and everything admitted must still be served.
  const double service_us =
      artifact->hw_config.CyclesToUs(artifact->TotalFullCycles());
  const double qps = 8.0e6 / service_us;
  const auto m = ServeOnce(artifact, qps, /*fleet=*/1,
                           /*queue_cap=*/4, /*seed=*/11, /*duration_s=*/0.05);
  EXPECT_GT(m.rejected, 0);
  EXPECT_EQ(m.max_queue_depth, 4);
  EXPECT_EQ(m.served, m.admitted);
  EXPECT_EQ(m.output_mismatches, 0);
}

TEST(InferenceServer, RejectsNullArtifact) {
  serve::InferenceServer server(serve::ServerOptions{});
  auto status = server.RegisterModel("null", nullptr);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace htvm

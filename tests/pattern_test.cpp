#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "nn/interpreter.hpp"
#include "pattern/matcher.hpp"
#include "pattern/rewriter.hpp"
#include "pattern/std_patterns.hpp"

namespace htvm {
namespace {

Graph ConvChainGraph(bool with_relu) {
  GraphBuilder b(1);
  NodeId x = b.Input("x", Shape{1, 8, 8, 8});
  ConvSpec spec;
  spec.out_channels = 16;
  spec.relu = with_relu;
  spec = WithSamePadding(spec, 8, 8);
  return b.Finish(b.ConvBlock(x, spec, "c"));
}

TEST(Matcher, MatchesConvChainWithRelu) {
  Graph g = ConvChainGraph(true);
  MatchResult m;
  ASSERT_TRUE(MatchAt(g, g.outputs()[0], ConvChainPattern(), g.UseCounts(),
                      &m));
  // internal: conv, bias_add, right_shift, clip, cast, clip + 3 constants
  EXPECT_EQ(m.internal.size(), 9u);
  EXPECT_EQ(m.external_inputs.size(), 1u);
  EXPECT_EQ(g.node(m.external_inputs[0]).kind, NodeKind::kInput);
  EXPECT_EQ(m.at(g, "anchor").op, "nn.conv2d");
  EXPECT_EQ(m.at(g, "weight").kind, NodeKind::kConstant);
}

TEST(Matcher, MatchesConvChainWithoutOptionalRelu) {
  Graph g = ConvChainGraph(false);
  MatchResult m;
  ASSERT_TRUE(MatchAt(g, g.outputs()[0], ConvChainPattern(), g.UseCounts(),
                      &m));
  EXPECT_EQ(m.internal.size(), 8u);  // no activation clip
}

TEST(Matcher, RejectsAtWrongRoot) {
  Graph g = ConvChainGraph(true);
  MatchResult m;
  // Root at the conv itself (not the end of the chain): pattern expects the
  // requant chain above it.
  NodeId conv = kInvalidNode;
  for (const Node& n : g.nodes()) {
    if (n.IsOp("nn.conv2d")) conv = n.id;
  }
  EXPECT_FALSE(MatchAt(g, conv, ConvChainPattern(), g.UseCounts(), &m));
}

TEST(Matcher, RejectsWhenIntermediateEscapes) {
  // A second consumer of the conv's int32 output outside the chain makes
  // the match non-extractable.
  GraphBuilder b(1);
  NodeId x = b.Input("x", Shape{1, 4, 4, 4});
  ConvSpec spec;
  spec.out_channels = 4;
  spec = WithSamePadding(spec, 4, 4);
  NodeId out = b.ConvBlock(x, spec, "c");
  Graph& g = b.graph();
  // Find the conv node and attach an escaping consumer.
  NodeId conv = kInvalidNode;
  for (const Node& n : g.nodes()) {
    if (n.IsOp("nn.conv2d")) conv = n.id;
  }
  NodeId escape = g.AddOp("nn.relu", {conv});
  NodeId escape8 =
      g.AddOp("cast", {escape}, AttrMap{{"dtype", std::string("int8")}});
  NodeId both = g.AddOp("add", {out, escape8});
  Graph graph = b.Finish(both);

  MatchResult m;
  EXPECT_FALSE(
      MatchAt(graph, out, ConvChainPattern(), graph.UseCounts(), &m));
}

TEST(Matcher, AttrConstraintFiltersCastDtype) {
  // A chain casting to int32 (wrong dtype) must not match.
  Graph g;
  NodeId in = g.AddInput("x", {Shape{1, 4, 4, 4}, DType::kInt8});
  Rng rng(1);
  NodeId w =
      g.AddConstant(Tensor::Random(Shape{4, 4, 1, 1}, DType::kInt8, rng));
  NodeId conv = g.AddOp("nn.conv2d", {in, w});
  NodeId bias =
      g.AddOp("nn.bias_add",
              {conv, g.AddConstant(Tensor::FromInt32(
                         Shape{4}, {0, 0, 0, 0}))},
              AttrMap{{"axis", i64{1}}});
  NodeId sh = g.AddOp(
      "right_shift", {bias, g.AddConstant(Tensor::FromInt32(Shape{1}, {4}))});
  NodeId cl = g.AddOp("clip", {sh},
                      AttrMap{{"a_min", i64{-128}}, {"a_max", i64{127}}});
  NodeId cast =
      g.AddOp("cast", {cl}, AttrMap{{"dtype", std::string("int32")}});
  g.SetOutputs({cast});
  MatchResult m;
  EXPECT_FALSE(MatchAt(g, cast, ConvChainPattern(), g.UseCounts(), &m));
}

TEST(Matcher, AddChainMatchesResidual) {
  GraphBuilder b(1);
  NodeId a = b.Input("a", Shape{1, 4, 4, 4});
  NodeId c = b.Input("c", Shape{1, 4, 4, 4});
  NodeId out = b.AddBlock(a, c, /*relu=*/true, /*shift=*/0);
  Graph g = b.Finish(out);
  MatchResult m;
  ASSERT_TRUE(MatchAt(g, out, AddChainPattern(), g.UseCounts(), &m));
  EXPECT_EQ(m.external_inputs.size(), 2u);
  EXPECT_EQ(m.at(g, "anchor").op, "add");
}

TEST(Rewriter, PartitionCollapsesChainIntoComposite) {
  Graph g = ConvChainGraph(true);
  const auto accept = [](const Graph&, const MatchResult&, AttrMap* attrs) {
    attrs->Set("target", std::string("digital"));
    return true;
  };
  Graph p = PartitionGraph(g, {{"diana.conv2d", ConvChainPattern(), accept, 0}});
  i64 composites = 0;
  for (const Node& n : p.nodes()) {
    if (n.kind == NodeKind::kComposite) {
      ++composites;
      EXPECT_EQ(n.op, "diana.conv2d");
      EXPECT_EQ(n.attrs.GetString("target"), "digital");
      EXPECT_EQ(n.attrs.GetString("composite"), "diana.conv2d");
      EXPECT_TRUE(n.body->Validate().ok());
    }
    EXPECT_NE(n.kind, NodeKind::kOp);  // everything got fused
  }
  EXPECT_EQ(composites, 1);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(Rewriter, PartitionPreservesSemantics) {
  Graph g = ConvChainGraph(true);
  const auto accept = [](const Graph&, const MatchResult&, AttrMap* attrs) {
    attrs->Set("target", std::string("cpu"));
    return true;
  };
  Graph p = PartitionGraph(g, {{"fused", ConvChainPattern(), accept, 0}});
  Rng rng(9);
  const Tensor input = Tensor::Random(Shape{1, 8, 8, 8}, DType::kInt8, rng);
  auto ref = nn::RunGraph(g, std::vector<Tensor>{input});
  auto part = nn::RunGraph(p, std::vector<Tensor>{input});
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  EXPECT_TRUE(ref.value()[0].SameAs(part.value()[0]));
}

TEST(Rewriter, RejectedPredicateLeavesOpsForCpu) {
  Graph g = ConvChainGraph(true);
  const auto reject = [](const Graph&, const MatchResult&, AttrMap*) {
    return false;
  };
  Graph p = PartitionGraph(g, {{"diana.conv2d", ConvChainPattern(), reject, 0}});
  i64 composites = 0;
  for (const Node& n : p.nodes()) {
    if (n.kind == NodeKind::kComposite) ++composites;
  }
  EXPECT_EQ(composites, 0);
}

TEST(Rewriter, TwoChainsBothMatched) {
  GraphBuilder b(2);
  NodeId x = b.Input("x", Shape{1, 8, 8, 8});
  ConvSpec spec;
  spec.out_channels = 8;
  spec = WithSamePadding(spec, 8, 8);
  NodeId y = b.ConvBlock(x, spec, "c1");
  NodeId z = b.ConvBlock(y, spec, "c2");
  Graph g = b.Finish(z);
  const auto accept = [](const Graph&, const MatchResult&, AttrMap* attrs) {
    attrs->Set("target", std::string("digital"));
    return true;
  };
  Graph p = PartitionGraph(g, {{"diana.conv2d", ConvChainPattern(), accept, 0}});
  i64 composites = 0;
  for (const Node& n : p.nodes()) {
    if (n.kind == NodeKind::kComposite) ++composites;
  }
  EXPECT_EQ(composites, 2);
}

TEST(Pattern, ToStringRendersStructure) {
  const std::string s = PatternToString(ConvChainPattern());
  EXPECT_NE(s.find("nn.conv2d"), std::string::npos);
  EXPECT_NE(s.find("clip?"), std::string::npos);
}

}  // namespace
}  // namespace htvm

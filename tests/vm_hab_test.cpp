// HAB (htvm-artifact v2) round-trip and end-to-end VM tests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cache/artifact_cache.hpp"
#include "cache/artifact_serialize.hpp"
#include "compiler/pipeline.hpp"
#include "hw/soc.hpp"
#include "models/mlperf_tiny.hpp"
#include "runtime/executor.hpp"
#include "vm/hab.hpp"
#include "vm/vm_executor.hpp"

namespace htvm::vm {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("htvm_vm_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  static int& counter() {
    static int c = 0;
    return c;
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

compiler::Artifact CompileDsCnn() {
  Graph g = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  auto artifact = compiler::HtvmCompiler{{}}.Compile(g);
  HTVM_CHECK(artifact.ok());
  return std::move(*artifact);
}

TEST(Hab, RoundTripIsBitIdentical) {
  const compiler::Artifact a = CompileDsCnn();
  HabMeta meta;
  meta.model_name = "dscnn";
  meta.producer = "test";
  const std::string bytes = SerializeHab(a, meta);
  ASSERT_TRUE(LooksLikeHab(bytes));

  auto parsed = ParseHab({reinterpret_cast<const u8*>(bytes.data()),
                          bytes.size()});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->meta.model_name, "dscnn");
  EXPECT_EQ(parsed->meta.producer, "test");

  // The strongest identity check the repo has: the v1 diff form of the
  // reparsed artifact matches the original field for field.
  EXPECT_EQ(cache::SerializeArtifactForDiff(parsed->artifact),
            cache::SerializeArtifactForDiff(a));
  // And the binary form itself is deterministic + stable across a cycle.
  EXPECT_EQ(SerializeHab(parsed->artifact, parsed->meta), bytes);
}

TEST(Hab, SectionTableIsComplete) {
  const compiler::Artifact a = CompileDsCnn();
  const std::string bytes = SerializeHab(a);
  auto parsed = ParseHab({reinterpret_cast<const u8*>(bytes.data()),
                          bytes.size()});
  ASSERT_TRUE(parsed.ok());
  // A default-SoC (diana) artifact has no kSoc section: the byte format is
  // identical to what pre-SoC-family writers produced.
  ASSERT_EQ(parsed->sections.size(), 8u);
  for (u32 id = 1; id <= 8; ++id) {
    EXPECT_EQ(parsed->sections[id - 1].id, id);
    EXPECT_EQ(parsed->sections[id - 1].offset % 8, 0) << "section " << id;
  }
  EXPECT_EQ(parsed->artifact.soc_name, "diana");
}

TEST(Hab, SocIdentityRoundTrips) {
  // A non-default SoC adds the kSoc section and survives the round trip
  // bit-identically; the parsed artifact carries the SoC name the compiler
  // recorded.
  Graph g = models::BuildDsCnn(models::PrecisionPolicy::kMixed);
  compiler::CompileOptions options;
  options.soc = *hw::FindSoc("diana-l1half");
  auto compiled = compiler::HtvmCompiler{options}.Compile(g);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->soc_name, "diana-l1half");

  const std::string bytes = SerializeHab(*compiled);
  auto parsed = ParseHab({reinterpret_cast<const u8*>(bytes.data()),
                          bytes.size()});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->sections.size(), 9u);
  EXPECT_EQ(parsed->sections.back().id,
            static_cast<u32>(HabSection::kSoc));
  EXPECT_EQ(parsed->artifact.soc_name, "diana-l1half");
  EXPECT_EQ(SerializeHab(parsed->artifact, parsed->meta), bytes);
  EXPECT_EQ(cache::SerializeArtifactForDiff(parsed->artifact),
            cache::SerializeArtifactForDiff(*compiled));
}

TEST(Hab, FileRoundTripThroughLoader) {
  TempDir dir;
  const compiler::Artifact a = CompileDsCnn();
  HabMeta meta;
  meta.model_name = "dscnn";
  const std::string path = dir.file("model.hab");
  ASSERT_TRUE(SaveHab(a, meta, path).ok());

  auto loaded = LoadedArtifact::FromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->zero_copy_source());
  EXPECT_GT(loaded->file_bytes(), 0);
  EXPECT_EQ(cache::SerializeArtifactForDiff(loaded->artifact()),
            cache::SerializeArtifactForDiff(a));
}

TEST(Hab, MissingFileIsNotFound) {
  auto loaded = LoadedArtifact::FromFile("/nonexistent/model.hab");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(Hab, VmExecutorBitExactWithInProcessExecutor) {
  TempDir dir;
  const compiler::Artifact a = CompileDsCnn();
  const std::string path = dir.file("model.hab");
  ASSERT_TRUE(SaveHab(a, {}, path).ok());
  auto loaded = LoadedArtifact::FromFile(path);
  ASSERT_TRUE(loaded.ok());

  const VmExecutor vm_exec(std::move(*loaded));
  const runtime::Executor in_process(&a);
  const std::vector<Tensor> inputs = SyntheticInputs(a, 42);

  auto from_vm = vm_exec.Run(inputs);
  auto from_compile = in_process.Run(inputs);
  ASSERT_TRUE(from_vm.ok()) << from_vm.status().ToString();
  ASSERT_TRUE(from_compile.ok());
  ASSERT_EQ(from_vm->outputs.size(), from_compile->outputs.size());
  for (size_t i = 0; i < from_vm->outputs.size(); ++i) {
    EXPECT_TRUE(from_vm->outputs[i].SameAs(from_compile->outputs[i]));
  }
  EXPECT_EQ(from_vm->total_cycles, from_compile->total_cycles);
}

TEST(Hab, TensorFileRoundTrip) {
  TempDir dir;
  Rng rng(5);
  std::vector<Tensor> tensors;
  tensors.push_back(Tensor::Random(Shape{1, 8, 4, 4}, DType::kInt8, rng));
  tensors.push_back(Tensor::Random(Shape{12}, DType::kInt32, rng));
  const std::string path = dir.file("io.tensors");
  ASSERT_TRUE(SaveTensors(tensors, path).ok());

  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_TRUE((*loaded)[0].SameAs(tensors[0]));
  EXPECT_TRUE((*loaded)[1].SameAs(tensors[1]));

  EXPECT_EQ(LoadTensors(dir.file("missing.tensors")).status().code(),
            StatusCode::kNotFound);
  std::ofstream(dir.file("junk.tensors")) << "not a tensor file";
  EXPECT_EQ(LoadTensors(dir.file("junk.tensors")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Hab, CacheWritesV2AndStillReadsV1) {
  TempDir dir;
  const compiler::Artifact a = CompileDsCnn();

  // New entries land on disk as HAB binaries...
  cache::ArtifactCache fresh({.dir = dir.path.string()});
  fresh.Store("model-a", a);
  {
    std::ifstream in(dir.file("model-a.htvmart"), std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string head(8, '\0');
    in.read(head.data(), 8);
    EXPECT_TRUE(LooksLikeHab(head));
  }

  // ...and a v1 text file left by an older build still loads (migration).
  ASSERT_TRUE(cache::SaveArtifact(a, dir.file("model-b.htvmart")).ok());
  cache::ArtifactCache reader({.dir = dir.path.string()});
  auto from_v2 = reader.Lookup("model-a");
  auto from_v1 = reader.Lookup("model-b");
  ASSERT_NE(from_v2, nullptr);
  ASSERT_NE(from_v1, nullptr);
  EXPECT_EQ(cache::SerializeArtifactForDiff(*from_v2),
            cache::SerializeArtifactForDiff(a));
  EXPECT_EQ(cache::SerializeArtifactForDiff(*from_v1),
            cache::SerializeArtifactForDiff(a));
}

TEST(Hab, CorruptCacheFileDegradesToMiss) {
  TempDir dir;
  const compiler::Artifact a = CompileDsCnn();
  cache::ArtifactCache writer({.dir = dir.path.string()});
  writer.Store("model", a);

  // Flip one byte in the middle of the file: checksum must catch it and the
  // cache must treat the file as a miss instead of crashing.
  const std::string path = dir.file("model.htvmart");
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  cache::ArtifactCache reader({.dir = dir.path.string()});
  EXPECT_EQ(reader.Lookup("model"), nullptr);
  EXPECT_EQ(reader.stats().misses, 1);
}

}  // namespace
}  // namespace htvm::vm

// Depth-first (fused-layer) execution: bit-exactness vs sequential
// execution, L1 feasibility, and the memory/traffic savings it exists for.
#include <gtest/gtest.h>

#include "dory/depth_first.hpp"
#include "dory/schedule.hpp"
#include "models/layer_zoo.hpp"
#include "nn/kernels.hpp"

namespace htvm::dory {
namespace {

const hw::DianaConfig kCfg = hw::DianaConfig::Default();

struct PairTensors {
  Tensor input, w1, b1, w2, b2;
};

FusedPairSpec MakePair(i64 c, i64 mid, i64 k, i64 hw, i64 k1 = 3, i64 s1 = 1,
                       i64 k2 = 3, i64 s2 = 1, bool dw_second = false) {
  models::ConvLayerParams p1;
  p1.c = c;
  p1.k = mid;
  p1.iy = p1.ix = hw;
  p1.kh = p1.kw = k1;
  p1.stride = s1;
  FusedPairSpec pair;
  pair.first = models::MakeConvSpec(p1);
  models::ConvLayerParams p2;
  p2.c = mid;
  p2.k = dw_second ? mid : k;
  p2.iy = pair.first.oy;
  p2.ix = pair.first.ox;
  p2.kh = p2.kw = k2;
  p2.stride = s2;
  p2.depthwise = dw_second;
  pair.second = models::MakeConvSpec(p2);
  return pair;
}

PairTensors MakeTensors(const FusedPairSpec& pair, u64 seed) {
  Rng rng(seed);
  PairTensors t;
  t.input = Tensor::Random(
      Shape{1, pair.first.c, pair.first.iy, pair.first.ix}, DType::kInt8,
      rng);
  t.w1 = Tensor::Random(
      Shape{pair.first.k,
            pair.first.kind == LayerKind::kDwConv2d ? 1 : pair.first.c,
            pair.first.kh, pair.first.kw},
      DType::kInt8, rng);
  t.b1 = Tensor::Random(Shape{pair.first.k}, DType::kInt32, rng);
  t.w2 = Tensor::Random(
      Shape{pair.second.k,
            pair.second.kind == LayerKind::kDwConv2d ? 1 : pair.second.c,
            pair.second.kh, pair.second.kw},
      DType::kInt8, rng);
  t.b2 = Tensor::Random(Shape{pair.second.k}, DType::kInt32, rng);
  return t;
}

Tensor Sequential(const FusedPairSpec& pair, const PairTensors& t) {
  const AccelLayerSpec& l1 = pair.first;
  const AccelLayerSpec& l2 = pair.second;
  auto acc1 = nn::Conv2d(t.input, t.w1, {l1.sy, l1.sx},
                         {l1.pad_t, l1.pad_l, l1.pad_b, l1.pad_r},
                         l1.kind == LayerKind::kDwConv2d ? l1.c : 1);
  HTVM_CHECK(acc1.ok());
  auto biased1 = nn::BiasAdd(*acc1, t.b1, 1);
  HTVM_CHECK(biased1.ok());
  const Tensor inter = RequantizeTensor(*biased1, l1.requant);
  auto acc2 = nn::Conv2d(inter, t.w2, {l2.sy, l2.sx},
                         {l2.pad_t, l2.pad_l, l2.pad_b, l2.pad_r},
                         l2.kind == LayerKind::kDwConv2d ? l2.c : 1);
  HTVM_CHECK(acc2.ok());
  auto biased2 = nn::BiasAdd(*acc2, t.b2, 1);
  HTVM_CHECK(biased2.ok());
  return RequantizeTensor(*biased2, l2.requant);
}

void ExpectFusedMatches(const FusedPairSpec& pair, i64 budget, u64 seed) {
  TilerOptions o;
  o.l1_budget_bytes = budget;
  auto sched = BuildDepthFirstSchedule(pair, kCfg, o);
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();
  const PairTensors t = MakeTensors(pair, seed);
  auto fused = ExecuteDepthFirst(*sched, t.input, t.w1, t.b1, t.w2, t.b2);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_TRUE(fused->SameAs(Sequential(pair, t)))
      << "fused execution diverged (tiles=" << sched->solution.n_y << "x"
      << sched->solution.n_x << ")";
}

TEST(DepthFirst, UntiledPairMatches) {
  ExpectFusedMatches(MakePair(8, 8, 8, 12), 256 * 1024, 1);
}

TEST(DepthFirst, TiledPairMatches) {
  ExpectFusedMatches(MakePair(8, 16, 8, 24), 6 * 1024, 2);
}

TEST(DepthFirst, StridedSecondLayerMatches) {
  ExpectFusedMatches(MakePair(8, 8, 16, 20, 3, 1, 3, 2), 6 * 1024, 3);
}

TEST(DepthFirst, StridedFirstLayerMatches) {
  ExpectFusedMatches(MakePair(4, 8, 8, 24, 3, 2, 3, 1), 4 * 1024, 4);
}

TEST(DepthFirst, ConvThenDepthwiseMatches) {
  ExpectFusedMatches(MakePair(8, 16, 16, 20, 3, 1, 3, 1, /*dw=*/true),
                     6 * 1024, 5);
}

TEST(DepthFirst, PointwisePairMatches) {
  ExpectFusedMatches(MakePair(16, 32, 16, 16, 1, 1, 1, 1), 4 * 1024, 6);
}

TEST(DepthFirst, RejectsMismatchedChain) {
  FusedPairSpec pair = MakePair(8, 8, 8, 12);
  pair.second.c = 99;
  EXPECT_FALSE(ValidateFusedPair(pair).ok());
}

TEST(DepthFirst, RejectsNonResidentWeights) {
  // Two 64x64x3x3 layers: 2 x 36 kB weights < 64 kB... use 96 channels to
  // exceed the digital weight memory.
  FusedPairSpec pair = MakePair(96, 96, 96, 16);
  TilerOptions o;
  auto sched = BuildDepthFirstSchedule(pair, kCfg, o);
  EXPECT_FALSE(sched.ok());
  EXPECT_EQ(sched.status().code(), StatusCode::kResourceExhausted);
}

TEST(DepthFirst, EliminatesIntermediateTraffic) {
  // Sequential execution pays L2 DMA for the intermediate both ways; the
  // fused schedule's activation traffic must be below that for a large
  // intermediate map.
  // Fusion-friendly shape: large spatial map, shallow channels — the
  // early-layer regime depth-first execution targets (high-resolution
  // intermediate dominating memory).
  const FusedPairSpec pair = MakePair(8, 8, 8, 64);
  TilerOptions o;
  o.l1_budget_bytes = 64 * 1024;
  auto fused = BuildDepthFirstSchedule(pair, kCfg, o);
  ASSERT_TRUE(fused.ok());
  auto seq1 = BuildSchedule(pair.first, kCfg, AccelTarget::kDigital, o);
  auto seq2 = BuildSchedule(pair.second, kCfg, AccelTarget::kDigital, o);
  ASSERT_TRUE(seq1.ok() && seq2.ok());
  EXPECT_LT(fused->act_dma_cycles,
            seq1->act_dma_cycles + seq2->act_dma_cycles);
  EXPECT_GT(fused->intermediate_bytes, 0);
  EXPECT_GE(fused->recompute_macs, 0);  // the price paid
}

TEST(DepthFirst, RecomputeGrowsAsTilesShrink) {
  const FusedPairSpec pair = MakePair(8, 16, 8, 32);
  TilerOptions big, small;
  big.l1_budget_bytes = 64 * 1024;
  small.l1_budget_bytes = 4 * 1024;
  auto a = BuildDepthFirstSchedule(pair, kCfg, big);
  auto b = BuildDepthFirstSchedule(pair, kCfg, small);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(a->recompute_macs, b->recompute_macs);
}

// Parameterized geometry sweep: fused execution must stay bit-exact across
// kernel sizes, strides, channel ratios and budgets.
struct DfCase {
  i64 c, mid, k, hw, k1, s1, k2, s2;
  bool dw_second;
  i64 budget_kb;
};

class DepthFirstSweep : public ::testing::TestWithParam<DfCase> {};

TEST_P(DepthFirstSweep, BitExact) {
  const DfCase d = GetParam();
  ExpectFusedMatches(
      MakePair(d.c, d.mid, d.k, d.hw, d.k1, d.s1, d.k2, d.s2, d.dw_second),
      d.budget_kb * 1024, static_cast<u64>(d.hw * 131 + d.c));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DepthFirstSweep,
    ::testing::Values(DfCase{4, 4, 4, 10, 3, 1, 3, 1, false, 2},
                      DfCase{8, 8, 8, 16, 1, 1, 3, 1, false, 3},
                      DfCase{8, 8, 8, 16, 3, 1, 1, 1, false, 3},
                      DfCase{3, 8, 8, 18, 3, 2, 3, 1, false, 4},
                      DfCase{8, 8, 8, 18, 3, 1, 3, 2, false, 4},
                      DfCase{6, 12, 6, 14, 5, 1, 3, 1, false, 6},
                      DfCase{8, 16, 16, 16, 1, 1, 3, 1, true, 4},
                      DfCase{16, 16, 16, 12, 3, 2, 3, 2, false, 8}));

}  // namespace
}  // namespace htvm::dory

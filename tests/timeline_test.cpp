#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "models/mlperf_tiny.hpp"
#include "runtime/timeline.hpp"

namespace htvm::runtime {
namespace {

TEST(Timeline, SequentialNonOverlapping) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  auto art = compiler::HtvmCompiler{compiler::CompileOptions{}}.Compile(net);
  ASSERT_TRUE(art.ok());
  const Timeline tl = BuildTimeline(*art);
  ASSERT_EQ(tl.entries.size(), art->kernels.size());
  i64 prev_end = 0;
  for (const auto& e : tl.entries) {
    EXPECT_EQ(e.start_cycle, prev_end);  // Fig. 2: strictly sequential
    EXPECT_GT(e.end_cycle, e.start_cycle);
    prev_end = e.end_cycle;
  }
  EXPECT_EQ(tl.total_cycles, art->TotalFullCycles());
}

TEST(Timeline, UsesAllThreeEnginesForMixedResNet) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kMixed);
  auto art = compiler::HtvmCompiler{compiler::CompileOptions{}}.Compile(net);
  ASSERT_TRUE(art.ok());
  const Timeline tl = BuildTimeline(*art);
  bool cpu = false, digital = false, analog = false;
  for (const auto& e : tl.entries) {
    cpu |= e.target == "cpu";
    digital |= e.target == "digital";
    analog |= e.target == "analog";
  }
  EXPECT_TRUE(cpu && digital && analog);
}

TEST(Timeline, RenderShowsLanes) {
  Graph net = models::BuildDsCnn(models::PrecisionPolicy::kInt8);
  auto art =
      compiler::HtvmCompiler{compiler::CompileOptions::DigitalOnly()}.Compile(
          net);
  ASSERT_TRUE(art.ok());
  const std::string render = BuildTimeline(*art).Render();
  EXPECT_NE(render.find("cpu"), std::string::npos);
  EXPECT_NE(render.find("digital"), std::string::npos);
  EXPECT_NE(render.find("D"), std::string::npos);
  EXPECT_NE(render.find("timeline:"), std::string::npos);
}

TEST(Timeline, EmptyArtifactRenders) {
  compiler::Artifact empty;
  const Timeline tl = BuildTimeline(empty);
  EXPECT_EQ(tl.total_cycles, 0);
  EXPECT_NE(tl.Render().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace htvm::runtime

// Concurrency tests: multiple threads driving runtime::Executor::Run over
// ONE shared compiler::Artifact must be race-free and bit-exact. Run under
// ThreadSanitizer in CI (-fsanitize=thread); the assertions here catch
// value corruption, TSan catches the races themselves.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "compiler/pipeline.hpp"
#include "ir/builder.hpp"
#include "runtime/executor.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "support/rng.hpp"

namespace htvm {
namespace {

Graph SmallNet(u64 seed) {
  GraphBuilder b(seed);
  NodeId x = b.Input("x", Shape{1, 8, 16, 16});
  ConvSpec spec;
  spec.out_channels = 16;
  x = b.ConvBlock(x, WithSamePadding(spec, 16, 16), "c");
  x = b.Flatten(b.GlobalAvgPool(x));
  x = b.DenseBlock(x, 10, /*relu=*/false);
  return b.Finish(x);
}

compiler::Artifact CompileSmallNet(const compiler::CompileOptions& options) {
  const Graph net = SmallNet(3);
  auto artifact = compiler::HtvmCompiler{options}.Compile(net);
  EXPECT_TRUE(artifact.ok()) << artifact.status().ToString();
  return std::move(*artifact);
}

void RunManyThreads(const compiler::Artifact& artifact,
                    runtime::ExecutorOptions exec_options, int threads,
                    int runs_per_thread) {
  const runtime::Executor executor(&artifact, exec_options);
  Rng rng(99);
  std::vector<Tensor> inputs;
  const Graph& g = artifact.kernel_graph;
  for (NodeId id : g.inputs()) {
    const Node& n = g.node(id);
    inputs.push_back(Tensor::Random(n.type.shape, n.type.dtype, rng));
  }
  auto reference = executor.Run(inputs);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int r = 0; r < runs_per_thread; ++r) {
        auto result = executor.Run(inputs);
        if (!result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        bool same = result->outputs.size() == reference->outputs.size();
        for (size_t o = 0; same && o < reference->outputs.size(); ++o) {
          same = result->outputs[o].SameAs(reference->outputs[o]);
        }
        if (!same || result->total_cycles != reference->total_cycles) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentExecutor, SharedArtifactInterpretedPath) {
  const compiler::Artifact artifact =
      CompileSmallNet(compiler::CompileOptions{});
  RunManyThreads(artifact, runtime::ExecutorOptions{}, /*threads=*/8,
                 /*runs_per_thread=*/8);
}

TEST(ConcurrentExecutor, SharedArtifactTiledPath) {
  const compiler::Artifact artifact =
      CompileSmallNet(compiler::CompileOptions{});
  runtime::ExecutorOptions options;
  options.simulate_tiles = true;
  RunManyThreads(artifact, options, /*threads=*/4, /*runs_per_thread=*/3);
}

TEST(ConcurrentExecutor, DistinctExecutorsOneArtifact) {
  const compiler::Artifact artifact =
      CompileSmallNet(compiler::CompileOptions{});
  Rng rng(5);
  std::vector<Tensor> inputs;
  for (NodeId id : artifact.kernel_graph.inputs()) {
    const Node& n = artifact.kernel_graph.node(id);
    inputs.push_back(Tensor::Random(n.type.shape, n.type.dtype, rng));
  }
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&artifact, &inputs, &failures] {
      const runtime::Executor executor(&artifact, runtime::ExecutorOptions{});
      for (int r = 0; r < 8; ++r) {
        if (!executor.Run(inputs).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent graph construction exercises the op registry (lazy
// registration + lookup) from many threads at once.
TEST(ConcurrentExecutor, ConcurrentGraphConstruction) {
  std::vector<std::thread> pool;
  std::atomic<int> bad{0};
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([t, &bad] {
      const Graph g = SmallNet(static_cast<u64>(t) + 1);
      if (g.NumNodes() <= 0) bad.fetch_add(1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// End-to-end: the serving worker pool (>= 4 threads) over one shared
// artifact with output verification on — the acceptance concurrency test.
TEST(ConcurrentExecutor, ServingWorkerPoolSharedArtifact) {
  auto artifact = std::make_shared<const compiler::Artifact>(
      CompileSmallNet(compiler::CompileOptions{}));
  serve::ServerOptions options;
  options.fleet_size = 4;
  options.worker_threads = 4;
  options.queue_capacity = 64;
  options.max_batch = 2;
  options.verify_outputs = true;
  serve::InferenceServer server(options);
  auto handle = server.RegisterModel("smallnet", artifact, 7);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const auto trace = serve::PoissonTrace(/*qps=*/500, /*duration_s=*/0.2,
                                         /*seed=*/7, 1);
  server.Start();
  for (const auto& event : trace) {
    (void)server.Submit(event.model, event.arrival_us);
  }
  const auto metrics = server.Drain(0.2);
  EXPECT_EQ(metrics.served, metrics.admitted);
  EXPECT_EQ(metrics.exec_failures, 0);
  EXPECT_EQ(metrics.output_mismatches, 0);
}

}  // namespace
}  // namespace htvm

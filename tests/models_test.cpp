#include <gtest/gtest.h>

#include "hw/cpu.hpp"
#include "models/mlperf_tiny.hpp"
#include "nn/interpreter.hpp"

namespace htvm::models {
namespace {

i64 TotalMacs(const Graph& g) {
  i64 macs = 0;
  for (const Node& n : g.nodes()) {
    if (n.kind == NodeKind::kOp) macs += hw::ComputeOpWork(g, n).macs;
  }
  return macs;
}

i64 WeightedLayers(const Graph& g) {
  i64 count = 0;
  for (const Node& n : g.nodes()) {
    if (n.IsOp("nn.conv2d") || n.IsOp("nn.dense")) ++count;
  }
  return count;
}

std::map<DType, i64> WeightDtypes(const Graph& g) {
  std::map<DType, i64> counts;
  for (const Node& n : g.nodes()) {
    if (n.IsOp("nn.conv2d") || n.IsOp("nn.dense")) {
      ++counts[g.node(n.inputs[1]).type.dtype];
    }
  }
  return counts;
}

TEST(Models, ResNet8Shape) {
  Graph g = BuildResNet8(PrecisionPolicy::kInt8);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.node(g.outputs()[0]).type.shape, (Shape{1, 10}));
  EXPECT_EQ(WeightedLayers(g), 10);
  // ~12.5M MACs (MLPerf Tiny reference: 12.5M).
  const i64 macs = TotalMacs(g);
  EXPECT_GT(macs, 11'000'000);
  EXPECT_LT(macs, 14'000'000);
}

TEST(Models, DsCnnShape) {
  Graph g = BuildDsCnn(PrecisionPolicy::kInt8);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.node(g.outputs()[0]).type.shape, (Shape{1, 12}));
  EXPECT_EQ(WeightedLayers(g), 10);
  const i64 macs = TotalMacs(g);
  EXPECT_GT(macs, 2'000'000);
  EXPECT_LT(macs, 4'000'000);
}

TEST(Models, MobileNetShape) {
  Graph g = BuildMobileNetV1(PrecisionPolicy::kInt8);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.node(g.outputs()[0]).type.shape, (Shape{1, 2}));
  EXPECT_EQ(WeightedLayers(g), 28);
  const i64 macs = TotalMacs(g);
  EXPECT_GT(macs, 6'000'000);
  EXPECT_LT(macs, 10'000'000);
}

TEST(Models, ToyAdmosShape) {
  Graph g = BuildToyAdmosDae(PrecisionPolicy::kInt8);
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.node(g.outputs()[0]).type.shape, (Shape{1, 640}));
  EXPECT_EQ(WeightedLayers(g), 10);
  // ~264k params ~= 264k MACs.
  const i64 macs = TotalMacs(g);
  EXPECT_GT(macs, 200'000);
  EXPECT_LT(macs, 300'000);
}

TEST(Models, Int8PolicyHasNoTernary) {
  for (const auto& model : MlperfTinySuite()) {
    const auto counts = WeightDtypes(model.build(PrecisionPolicy::kInt8));
    EXPECT_EQ(counts.count(DType::kTernary), 0u) << model.name;
  }
}

TEST(Models, TernaryPolicyKeepsDepthwiseInt8) {
  Graph g = BuildMobileNetV1(PrecisionPolicy::kTernary);
  for (const Node& n : g.nodes()) {
    if (!n.IsOp("nn.conv2d")) continue;
    const bool dw = n.attrs.GetInt("groups", 1) > 1;
    const DType wt = g.node(n.inputs[1]).type.dtype;
    if (dw) {
      EXPECT_EQ(wt, DType::kInt8);
    } else {
      EXPECT_EQ(wt, DType::kTernary);
    }
  }
}

TEST(Models, MixedPolicyPinsFirstAndLastToInt8) {
  Graph g = BuildResNet8(PrecisionPolicy::kMixed);
  std::vector<DType> weighted;
  for (const Node& n : g.nodes()) {
    if (n.IsOp("nn.conv2d") || n.IsOp("nn.dense")) {
      weighted.push_back(g.node(n.inputs[1]).type.dtype);
    }
  }
  ASSERT_EQ(weighted.size(), 10u);
  EXPECT_EQ(weighted.front(), DType::kInt8);
  EXPECT_EQ(weighted.back(), DType::kInt8);
  // Middle layers go ternary.
  i64 ternary = 0;
  for (DType t : weighted) ternary += t == DType::kTernary;
  EXPECT_GE(ternary, 6);
}

TEST(Models, AllNetsExecuteFunctionally) {
  Rng rng(1);
  struct Case {
    Graph g;
    Shape in;
  };
  std::vector<Case> cases;
  cases.push_back({BuildResNet8(PrecisionPolicy::kInt8), Shape{1, 3, 32, 32}});
  cases.push_back({BuildDsCnn(PrecisionPolicy::kInt8), Shape{1, 1, 49, 10}});
  cases.push_back(
      {BuildToyAdmosDae(PrecisionPolicy::kInt8), Shape{1, 640}});
  for (auto& c : cases) {
    const Tensor input = Tensor::Random(c.in, DType::kInt8, rng);
    auto out = nn::RunGraph(c.g, std::vector<Tensor>{input});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
}

TEST(Models, SuiteHasFourEntries) {
  const auto suite = MlperfTinySuite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_STREQ(suite[0].name, "DSCNN");
  EXPECT_STREQ(suite[2].name, "ResNet");
}

TEST(Models, DeterministicAcrossBuilds) {
  Graph a = BuildResNet8(PrecisionPolicy::kInt8);
  Graph b = BuildResNet8(PrecisionPolicy::kInt8);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (NodeId i = 0; i < a.NumNodes(); ++i) {
    if (a.node(i).kind == NodeKind::kConstant) {
      EXPECT_TRUE(a.node(i).value.SameAs(b.node(i).value));
    }
  }
}

}  // namespace
}  // namespace htvm::models

// htvm-serve — open-loop serving driver for the HTVM reproduction.
//
// Replays a synthetic Poisson arrival trace against a fleet of simulated
// DIANA SoC instances and prints the serving metrics (throughput, latency
// p50/p95/p99, queue behaviour, per-SoC utilization) as JSON. All timing is
// on the simulated clock, so the output is deterministic in the seed.
//
//   htvm-serve --model resnet --config mixed --qps 200 --fleet 4 \
//              --duration-s 2 --seed 7
//   htvm-serve --model resnet,dscnn --config digital --qps 500 --fleet 2 \
//              --batch 4 --queue-cap 32
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "cache/artifact_cache.hpp"
#include "compiler/pipeline.hpp"
#include "hw/soc.hpp"
#include "models/registry.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "support/string_utils.hpp"
#include "vm/loaded_artifact.hpp"

using namespace htvm;

namespace {

struct ServeCliOptions {
  std::vector<std::string> models;  // builtin model names
  std::string config = "mixed";
  double qps = 100.0;
  double duration_s = 1.0;
  std::vector<std::string> fleet_kinds = {"diana"};  // one entry per SoC
  serve::PlacementPolicy placement = serve::PlacementPolicy::kModelAware;
  int queue_cap = 64;
  int batch = 1;
  int threads = 0;           // 0 => one per SoC
  int compile_threads = 0;   // CompileKernels lanes (0 = hw concurrency)
  u64 seed = 7;
  std::string schedule_search;  // tile-schedule search strategy name
  std::string cache_dir;
  std::string preload_dir;  // register deployable HABs, zero compiles
  bool verify = false;
  bool help = false;
  bool chaos = false;
  double crash_frac = 0.3;
  double transient_rate = 2.0;  // windows per SoC-second
  double slow_frac = 0.25;
};

void PrintUsage() {
  std::printf(R"(htvm-serve — open-loop serving over simulated DIANA SoCs

options:
  --model <name[,name...]>   builtin MLPerf Tiny models to serve
                             (dscnn|mobilenet|resnet|toyadmos)
  --config <tvm|digital|analog|mixed>  deployment configuration
  --qps <n>                  Poisson arrival rate (requests/s)
  --duration-s <n>           trace horizon in seconds
  --fleet <spec>             simulated SoC instances: either a count of
                             default "diana" SoCs (--fleet 4) or a mixed
                             fleet of registered SoC families as
                             name:count pairs (--fleet diana:2,diana-pe32:2)
  --placement <policy>       how a dispatching request picks its SoC:
                             model-aware (default; per-kind predicted
                             latency), round-robin, earliest-free
  --queue-cap <n>            admission-control queue bound
  --batch <n>                micro-batch size (1 = off)
  --threads <n>              worker threads (default: one per SoC)
  --compile-threads <n>      CompileKernels lanes per compile on the shared
                             pool (0 = hardware concurrency, 1 = sequential);
                             with the process-wide artifact cache, parallel
                             misses overlap kernel compilation instead of
                             serializing behind one compile
  --seed <n>                 trace seed (metrics are deterministic in it)
  --schedule-search <heuristic|beam|evolutionary|graph-beam|graph-evolutionary>
                             tile-schedule search strategy for compiles
                             (default heuristic; beam/evolutionary search
                             with the hw cost model — pair with --cache-dir
                             so restarts replay memoized schedules)
  --cache-dir <dir>          persist compiled artifacts to a content-
                             addressed cache; a restarted fleet serving the
                             same models compiles nothing ("compiles": 0 in
                             the metrics JSON)
  --preload-dir <dir>        register every htvm-artifact v2 (.hab/.htvmart)
                             file in <dir> as a served model — a warm start
                             with zero compiles; combine with --model to
                             serve compiled models alongside
  --verify                   check every output against the reference run
  --chaos                    inject seeded SoC faults (crashes, transient
                             DMA/accelerator errors, latency spikes); the
                             fleet retries, re-dispatches and evicts —
                             metrics stay deterministic in --seed
  --crash-frac <f>           fraction of the fleet crashing mid-run (0.3)
  --transient-rate <hz>      transient fault windows per SoC-second (2)
  --slow-frac <f>            fraction of the fleet with a latency spike (0.25)
  --help                     this text
)");
}

// "--fleet 4" (a plain count of default "diana" SoCs) or
// "--fleet diana:2,diana-pe32:1,diana-scalar:1" (name:count pairs, each
// name a registered SocDescription). Returns one kind per fleet index.
Result<std::vector<std::string>> ParseFleetSpec(const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("bad --fleet value");
  if (spec.find_first_not_of("0123456789") == std::string::npos) {
    const int n = std::atoi(spec.c_str());
    if (n <= 0) return Status::InvalidArgument("bad --fleet value");
    return std::vector<std::string>(static_cast<size_t>(n), "diana");
  }
  std::vector<std::string> kinds;
  std::string entry;
  for (char c : spec + ",") {
    if (c != ',') {
      entry += c;
      continue;
    }
    if (entry.empty()) continue;
    std::string name = entry;
    int count = 1;
    const size_t colon = entry.find(':');
    if (colon != std::string::npos) {
      name = entry.substr(0, colon);
      count = std::atoi(entry.c_str() + colon + 1);
      if (count <= 0) {
        return Status::InvalidArgument("bad --fleet count in '" + entry + "'");
      }
    }
    // Validate against the registry so a typo fails at parse time with the
    // list of known families instead of deep inside compilation.
    HTVM_RETURN_IF_ERROR(hw::FindSoc(name).status());
    kinds.insert(kinds.end(), static_cast<size_t>(count), name);
    entry.clear();
  }
  if (kinds.empty()) return Status::InvalidArgument("bad --fleet value");
  return kinds;
}

Result<ServeCliOptions> ParseArgs(int argc, char** argv) {
  ServeCliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--model") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      std::string current;
      for (char c : v + ",") {
        if (c == ',') {
          if (!current.empty()) opt.models.push_back(current);
          current.clear();
        } else {
          current += c;
        }
      }
    } else if (arg == "--config") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.config = v;
    } else if (arg == "--qps") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.qps = std::atof(v.c_str());
      if (opt.qps <= 0) return Status::InvalidArgument("bad --qps value");
    } else if (arg == "--duration-s") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.duration_s = std::atof(v.c_str());
      if (opt.duration_s <= 0) {
        return Status::InvalidArgument("bad --duration-s value");
      }
    } else if (arg == "--fleet") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      HTVM_ASSIGN_OR_RETURN(kinds, ParseFleetSpec(v));
      opt.fleet_kinds = kinds;
    } else if (arg == "--placement") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      if (v == "model-aware") {
        opt.placement = serve::PlacementPolicy::kModelAware;
      } else if (v == "round-robin") {
        opt.placement = serve::PlacementPolicy::kRoundRobin;
      } else if (v == "earliest-free") {
        opt.placement = serve::PlacementPolicy::kEarliestFree;
      } else {
        return Status::InvalidArgument(
            "bad --placement value '" + v +
            "' (want model-aware|round-robin|earliest-free)");
      }
    } else if (arg == "--queue-cap") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.queue_cap = std::atoi(v.c_str());
      if (opt.queue_cap <= 0) {
        return Status::InvalidArgument("bad --queue-cap value");
      }
    } else if (arg == "--batch") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.batch = std::atoi(v.c_str());
      if (opt.batch <= 0) return Status::InvalidArgument("bad --batch value");
    } else if (arg == "--threads") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.threads = std::atoi(v.c_str());
      if (opt.threads < 0) {
        return Status::InvalidArgument("bad --threads value");
      }
    } else if (arg == "--compile-threads") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.compile_threads = std::atoi(v.c_str());
      if (opt.compile_threads < 0 ||
          (opt.compile_threads == 0 && v != "0")) {
        return Status::InvalidArgument("bad --compile-threads value");
      }
    } else if (arg == "--seed") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.seed = static_cast<u64>(std::atoll(v.c_str()));
    } else if (arg == "--schedule-search") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      HTVM_RETURN_IF_ERROR(dory::ParseScheduleSearchKind(v).status());
      opt.schedule_search = v;
    } else if (arg == "--cache-dir") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.cache_dir = v;
    } else if (arg == "--preload-dir") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.preload_dir = v;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--crash-frac") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.crash_frac = std::atof(v.c_str());
      if (opt.crash_frac < 0 || opt.crash_frac > 1) {
        return Status::InvalidArgument("bad --crash-frac value");
      }
    } else if (arg == "--transient-rate") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.transient_rate = std::atof(v.c_str());
      if (opt.transient_rate < 0) {
        return Status::InvalidArgument("bad --transient-rate value");
      }
    } else if (arg == "--slow-frac") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.slow_frac = std::atof(v.c_str());
      if (opt.slow_frac < 0 || opt.slow_frac > 1) {
        return Status::InvalidArgument("bad --slow-frac value");
      }
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return opt;
}

Result<Graph> BuildModel(const std::string& name,
                         models::PrecisionPolicy policy) {
  return models::BuildByName(name, policy);
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "htvm-serve: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  const ServeCliOptions opt = *parsed;
  if (opt.help || (opt.models.empty() && opt.preload_dir.empty())) {
    PrintUsage();
    return opt.help ? 0 : 2;
  }

  compiler::CompileOptions options;
  models::PrecisionPolicy policy = models::PrecisionPolicy::kMixed;
  if (opt.config == "tvm") {
    options = compiler::CompileOptions::PlainTvm();
    policy = models::PrecisionPolicy::kInt8;
  } else if (opt.config == "digital") {
    options = compiler::CompileOptions::DigitalOnly();
    policy = models::PrecisionPolicy::kInt8;
  } else if (opt.config == "analog") {
    options = compiler::CompileOptions::AnalogOnly();
    policy = models::PrecisionPolicy::kTernary;
  } else if (opt.config == "mixed") {
    policy = models::PrecisionPolicy::kMixed;
  } else {
    std::fprintf(stderr, "htvm-serve: unknown --config '%s'\n",
                 opt.config.c_str());
    return 2;
  }
  options.compile_threads = opt.compile_threads;
  if (!opt.schedule_search.empty()) {
    // Validated at parse time.
    options.schedule_search.kind =
        *dory::ParseScheduleSearchKind(opt.schedule_search);
  }

  serve::ServerOptions server_options;
  server_options.fleet_size = static_cast<int>(opt.fleet_kinds.size());
  server_options.soc_kinds = opt.fleet_kinds;
  server_options.placement = opt.placement;
  server_options.queue_capacity = opt.queue_cap;
  server_options.worker_threads = opt.threads;
  server_options.max_batch = opt.batch;
  server_options.verify_outputs = opt.verify;
  if (opt.chaos) {
    server_options.chaos.enabled = true;
    server_options.chaos.seed = opt.seed;
    server_options.chaos.plan.horizon_us = opt.duration_s * 1e6;
    server_options.chaos.plan.crash_fraction = opt.crash_frac;
    server_options.chaos.plan.transient_rate_hz = opt.transient_rate;
    server_options.chaos.plan.slow_fraction = opt.slow_frac;
  }
  serve::InferenceServer server(server_options);
  if (!opt.cache_dir.empty()) {
    cache::ConfigureGlobalArtifactCache({.dir = opt.cache_dir});
  } else {
    // Still compile through the process-wide cache: duplicate models in
    // --model a,a and repeated registrations compile once per content.
    cache::ConfigureGlobalArtifactCache({});
  }

  if (!opt.preload_dir.empty()) {
    // Warm start: every deployable artifact in the directory becomes a
    // served model without touching the compiler.
    server.EnableCompileCacheMetrics();
    std::error_code ec;
    std::filesystem::directory_iterator it(opt.preload_dir, ec);
    if (ec) {
      std::fprintf(stderr, "htvm-serve: cannot read --preload-dir %s: %s\n",
                   opt.preload_dir.c_str(), ec.message().c_str());
      return 1;
    }
    // Sorted for deterministic model handles (directory order is not).
    std::vector<std::string> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(opt.preload_dir)) {
      const std::string ext = entry.path().extension().string();
      if (entry.is_regular_file() && (ext == ".hab" || ext == ".htvmart")) {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    int preloaded = 0;
    for (const std::string& path : paths) {
      auto loaded = vm::LoadedArtifact::FromFile(path);
      if (!loaded.ok()) {
        // Corrupt or version-skewed files are skipped, like a cache miss —
        // one bad artifact must not take down the warm start.
        std::fprintf(stderr, "htvm-serve: skipping %s: %s\n", path.c_str(),
                     loaded.status().ToString().c_str());
        continue;
      }
      std::string name = loaded->meta().model_name;
      if (name.empty()) {
        name = std::filesystem::path(path).stem().string();
      }
      auto artifact = std::make_shared<const compiler::Artifact>(
          loaded->artifact());
      auto handle = server.RegisterModel(name, std::move(artifact), opt.seed);
      if (!handle.ok()) {
        std::fprintf(stderr, "htvm-serve: %s\n",
                     handle.status().ToString().c_str());
        return 1;
      }
      preloaded += 1;
      std::fprintf(stderr,
                   "htvm-serve: %s preloaded from %s, service %.1f us/request\n",
                   name.c_str(), path.c_str(), server.ServiceUs(*handle));
    }
    if (preloaded == 0 && opt.models.empty()) {
      std::fprintf(stderr, "htvm-serve: no loadable artifacts in %s\n",
                   opt.preload_dir.c_str());
      return 1;
    }
  }

  for (const std::string& name : opt.models) {
    auto network = BuildModel(name, policy);
    if (!network.ok()) {
      std::fprintf(stderr, "htvm-serve: %s\n",
                   network.status().ToString().c_str());
      return 1;
    }
    auto handle = server.RegisterModel(name, *network, options, opt.seed);
    if (!handle.ok()) {
      std::fprintf(stderr, "htvm-serve: %s\n",
                   handle.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "htvm-serve: %s/%s ready, service %.1f us/request\n",
                 name.c_str(), opt.config.c_str(), server.ServiceUs(*handle));
  }
  {
    const cache::CacheStats cs = cache::GlobalArtifactCache().stats();
    std::fprintf(stderr,
                 "htvm-serve: compile cache — %lld compiles, %lld hits "
                 "(%lld from disk), %.1f ms saved\n",
                 static_cast<long long>(cs.compiles),
                 static_cast<long long>(cs.hits),
                 static_cast<long long>(cs.disk_hits),
                 static_cast<double>(cs.saved_ns) / 1e6);
  }

  if (opt.chaos) {
    std::fprintf(stderr, "htvm-serve: chaos plan: %s\n",
                 server.faults().Summary().c_str());
  }
  const auto trace = serve::PoissonTrace(opt.qps, opt.duration_s, opt.seed,
                                         server.num_models());
  server.Start();
  for (const serve::TraceEvent& event : trace) {
    // Rejections are part of the experiment; they land in the metrics.
    (void)server.Submit(event.model, event.arrival_us);
  }
  const serve::ServingMetrics metrics = server.Drain(opt.duration_s);
  std::printf("%s", metrics.ToJson().c_str());
  if (opt.chaos) {
    std::fprintf(stderr,
                 "htvm-serve: chaos seed %llu — %lld retries, %lld "
                 "re-dispatches, %lld evictions, %lld crashes, %lld lost\n",
                 static_cast<unsigned long long>(opt.seed),
                 static_cast<long long>(metrics.retries),
                 static_cast<long long>(metrics.redispatches),
                 static_cast<long long>(metrics.evictions),
                 static_cast<long long>(metrics.crashes),
                 static_cast<long long>(metrics.lost));
  }
  if (metrics.exec_failures > 0 || metrics.output_mismatches > 0 ||
      metrics.lost > 0) {
    std::fprintf(stderr, "htvm-serve: %lld failures, %lld mismatches, "
                 "%lld lost\n",
                 static_cast<long long>(metrics.exec_failures),
                 static_cast<long long>(metrics.output_mismatches),
                 static_cast<long long>(metrics.lost));
    return 1;
  }
  return 0;
}

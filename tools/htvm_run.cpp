// htvm-run — slim deployable-artifact runner.
//
// Executes a htvm-artifact v2 (HAB) binary produced by `htvmc
// --emit-artifact` without any compiler linked in: this binary depends only
// on the vm + runtime + hw layers (enforced by the build's link-closure
// check). The deployment story of the paper in miniature — one compile
// service emits artifacts, N stateless runner processes execute them.
//
//   htvm-run model.hab                          inference on synthetic inputs
//   htvm-run model.hab --input in.tensors       inference on supplied inputs
//   htvm-run model.hab --dump-outputs out.bin   write outputs for diffing
//   htvm-run model.hab --meta                   header / section inspection
#include <cstdio>
#include <cstring>

#include "hw/soc.hpp"
#include "runtime/timeline.hpp"
#include "support/string_utils.hpp"
#include "vm/vm_executor.hpp"

using namespace htvm;

namespace {

struct CliOptions {
  std::string artifact_path;
  std::string input_path;     // tensor-list file; empty = synthetic inputs
  std::string dump_outputs;
  std::string soc;  // refuse artifacts built for a different SoC
  u64 input_seed = 42;
  bool meta = false;
  bool report = false;
  bool timeline = false;
  bool simulate_tiles = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(R"(htvm-run — execute a deployable HTVM artifact (no compiler)

usage: htvm-run <model.hab> [options]

options:
  --input <file>          input tensors (tensor-list file); default is
                          synthetic inputs derived from --input-seed
  --input-seed <n>        seed for synthetic inputs (default 42, matching
                          htvmc --run-outputs)
  --dump-outputs <file>   write output tensors (byte-comparable with an
                          in-process htvmc --run-outputs dump)
  --simulate-tiles        drive accelerator kernels tile by tile through
                          their DORY schedule
  --soc <name>            SoC family this runner is deployed on; loading an
                          artifact compiled for a different SocDescription
                          fails instead of silently mis-executing
  --meta                  print header/section metadata and exit
  --report                per-kernel profile table
  --timeline              execution timeline
  --help                  this text
)");
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--input") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.input_path = v;
    } else if (arg == "--input-seed") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.input_seed = static_cast<u64>(std::atoll(v.c_str()));
    } else if (arg == "--dump-outputs") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.dump_outputs = v;
    } else if (arg == "--soc") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      HTVM_RETURN_IF_ERROR(hw::FindSoc(v).status());
      opt.soc = v;
    } else if (arg == "--simulate-tiles") {
      opt.simulate_tiles = true;
    } else if (arg == "--meta") {
      opt.meta = true;
    } else if (arg == "--report") {
      opt.report = true;
    } else if (arg == "--timeline") {
      opt.timeline = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (!arg.empty() && arg[0] != '-' && opt.artifact_path.empty()) {
      opt.artifact_path = arg;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "htvm-run: %s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const CliOptions opt = *parsed;
  if (opt.help || opt.artifact_path.empty()) {
    PrintUsage();
    return opt.help ? 0 : 2;
  }

  auto loaded = vm::LoadedArtifact::FromFile(opt.artifact_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "htvm-run: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  if (!opt.soc.empty() && loaded->artifact().soc_name != opt.soc) {
    const Status mismatch = Status::Unsupported(
        "artifact was compiled for SoC '" + loaded->artifact().soc_name +
        "' but this runner is deployed on '" + opt.soc + "'");
    std::fprintf(stderr, "htvm-run: %s\n", mismatch.ToString().c_str());
    return 1;
  }

  if (opt.meta) {
    std::printf("artifact: %s\n", opt.artifact_path.c_str());
    std::printf("model: %s (producer: %s)\n", loaded->meta().model_name.c_str(),
                loaded->meta().producer.c_str());
    std::printf("soc: %s\n", loaded->artifact().soc_name.c_str());
    std::printf("format: htvm-artifact v%u | %lld bytes | %s\n",
                vm::kHabVersion, static_cast<long long>(loaded->file_bytes()),
                loaded->zero_copy_source() ? "mmap" : "buffered");
    std::printf("kernels: %zu | graph nodes: %lld | arena: %lld bytes\n",
                loaded->artifact().kernels.size(),
                static_cast<long long>(loaded->artifact().kernel_graph
                                           .NumNodes()),
                static_cast<long long>(loaded->artifact().memory_plan
                                           .arena_bytes));
    std::printf("sections:\n");
    for (const vm::HabSectionInfo& s : loaded->sections()) {
      std::printf("  id %-2u  offset %-8lld  %-8lld bytes  checksum %016llx\n",
                  s.id, static_cast<long long>(s.offset),
                  static_cast<long long>(s.bytes),
                  static_cast<unsigned long long>(s.checksum));
    }
    return 0;
  }

  runtime::ExecutorOptions exec_options;
  exec_options.simulate_tiles = opt.simulate_tiles;
  const vm::VmExecutor executor(std::move(*loaded), exec_options);

  std::vector<Tensor> inputs;
  if (!opt.input_path.empty()) {
    auto tensors = vm::LoadTensors(opt.input_path);
    if (!tensors.ok()) {
      std::fprintf(stderr, "htvm-run: %s\n",
                   tensors.status().ToString().c_str());
      return 1;
    }
    inputs = std::move(*tensors);
  } else {
    inputs = vm::SyntheticInputs(executor.artifact(), opt.input_seed);
  }

  auto result = executor.Run(inputs);
  if (!result.ok()) {
    std::fprintf(stderr, "htvm-run: run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s: %zu outputs | %lld cycles | %.3f ms\n",
              executor.loaded().meta().model_name.empty()
                  ? opt.artifact_path.c_str()
                  : executor.loaded().meta().model_name.c_str(),
              result->outputs.size(),
              static_cast<long long>(result->total_cycles),
              result->latency_ms);

  if (opt.report) {
    std::printf("\n%s", executor.artifact().Profile().ToTable().c_str());
  }
  if (opt.timeline) {
    std::printf("\n%s",
                runtime::BuildTimeline(executor.artifact()).Render().c_str());
  }
  if (!opt.dump_outputs.empty()) {
    if (auto status = vm::SaveTensors(result->outputs, opt.dump_outputs);
        !status.ok()) {
      std::fprintf(stderr, "htvm-run: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote outputs to %s\n", opt.dump_outputs.c_str());
  }
  return 0;
}

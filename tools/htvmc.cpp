// htvmc — command-line front end of the HTVM reproduction.
//
// Compiles a network (a built-in MLPerf Tiny model or a serialized
// .htvm graph file) for a DIANA configuration and reports/emits the
// results: per-kernel profile, timeline, energy estimate, DOT graph,
// deployable C sources.
//
//   htvmc --model resnet --config mixed --report
//   htvmc --graph net.htvm --config digital --emit-dir out/
//   htvmc --model dscnn --config analog --dot graph.dot --timeline
//   htvmc --help
#include <cstdio>
#include <cstring>
#include <cctype>
#include <fstream>
#include <sys/stat.h>

#include "cache/artifact_cache.hpp"
#include "compiler/emit.hpp"
#include "compiler/pass_manager.hpp"
#include "compiler/pipeline.hpp"
#include "hw/soc.hpp"
#include "ir/dot.hpp"
#include "ir/serialize.hpp"
#include "models/registry.hpp"
#include "runtime/energy.hpp"
#include "runtime/executor.hpp"
#include "runtime/timeline.hpp"
#include "support/string_utils.hpp"
#include "vm/hab.hpp"
#include "vm/vm_executor.hpp"

using namespace htvm;

namespace {

struct CliOptions {
  std::string model;       // builtin model name
  std::string graph_path;  // serialized graph file
  std::string config = "mixed";
  std::string soc;  // SocDescription name; empty = default "diana"
  std::string emit_dir;
  std::string dot_path;
  std::string dump_ir_dir;
  std::string dump_ir_filter;
  std::string cache_dir;
  std::string artifact_path;  // --emit-artifact: write a deployable HAB
  std::string run_outputs;    // in-process inference, dump output tensors
  std::string schedule_search;  // tile-schedule search strategy name
  u64 input_seed = 42;
  i64 l1_kb = -1;
  int compile_threads = 0;  // 0 = hardware concurrency, 1 = sequential
  bool report = false;
  bool timeline = false;
  bool energy = false;
  bool tuned_cpu = false;
  bool print_pass_times = false;
  bool list_models = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(R"(htvmc — HTVM (reproduction) compiler driver

input (one of):
  --model <name>                              built-in model from the shared
                                              registry (--list-models)
  --graph <file.htvm>                         serialized graph (ir/serialize)

options:
  --config <tvm|digital|analog|mixed>         deployment configuration
  --soc <name>                                target SoC family from the
                                              registry (default diana);
                                              artifacts record their SoC and
                                              htvm-run --soc refuses a
                                              mismatch
  --tuned-cpu                                 enable the hand-tuned CPU
                                              kernel library BYOC target
  --l1 <kB>                                   override the L1 tiling budget
  --report                                    per-kernel profile table
  --timeline                                  Fig. 2-style execution timeline
  --energy                                    energy estimate
  --dot <file.dot>                            partitioned graph as Graphviz
  --emit-dir <dir>                            write deployable C sources
  --dump-ir <dir>                             write post-pass IR dumps
                                              (<NN>_<pass>.txt + .dot)
  --dump-ir-filter <pass>                     restrict --dump-ir to the IR
                                              entering and leaving <pass>
  --cache-dir <dir>                           reuse compiled artifacts from a
                                              content-addressed cache dir
  --emit-artifact <file.hab>                  write the compiled model as a
                                              deployable htvm-artifact v2
                                              binary (run it with htvm-run)
  --run-outputs <file>                        run inference in-process on
                                              synthetic inputs and dump the
                                              output tensors (byte-comparable
                                              with htvm-run --dump-outputs)
  --input-seed <n>                            seed for synthetic inputs
                                              (default 42)
  --compile-threads <n>                       CompileKernels lanes on the
                                              shared pool (0 = hardware
                                              concurrency, 1 = sequential;
                                              artifacts are byte-identical
                                              for every value)
  --schedule-search <heuristic|beam|evolutionary|graph-beam|graph-evolutionary>
                                              tile-schedule search strategy
                                              (default heuristic = DORY
                                              Eq. 1-5 picker; beam and
                                              evolutionary search candidate
                                              schedules with the hw cost
                                              model, match-or-beat latency)
  --print-pass-times                          per-pass compile-time breakdown
                                              (no-change passes show skipped)
  --list-models                               print the model registry
  --help                                      this text
)");
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--model") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.model = v;
    } else if (arg == "--graph") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.graph_path = v;
    } else if (arg == "--config") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.config = v;
    } else if (arg == "--soc") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      HTVM_RETURN_IF_ERROR(hw::FindSoc(v).status());
      opt.soc = v;
    } else if (arg == "--emit-dir") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.emit_dir = v;
    } else if (arg == "--dot") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.dot_path = v;
    } else if (arg == "--dump-ir") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.dump_ir_dir = v;
    } else if (arg == "--dump-ir-filter") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.dump_ir_filter = v;
    } else if (arg == "--cache-dir") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.cache_dir = v;
    } else if (arg == "--emit-artifact") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.artifact_path = v;
    } else if (arg == "--run-outputs") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.run_outputs = v;
    } else if (arg == "--input-seed") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.input_seed = static_cast<u64>(std::atoll(v.c_str()));
    } else if (arg == "--compile-threads") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.compile_threads = std::atoi(v.c_str());
      if (opt.compile_threads < 0 ||
          (opt.compile_threads == 0 && v != "0")) {
        return Status::InvalidArgument("bad --compile-threads value");
      }
    } else if (arg == "--schedule-search") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      HTVM_RETURN_IF_ERROR(dory::ParseScheduleSearchKind(v).status());
      opt.schedule_search = v;
    } else if (arg == "--print-pass-times") {
      opt.print_pass_times = true;
    } else if (arg == "--list-models") {
      opt.list_models = true;
    } else if (arg == "--l1") {
      HTVM_ASSIGN_OR_RETURN(v, value());
      opt.l1_kb = std::atoll(v.c_str());
      if (opt.l1_kb <= 0) return Status::InvalidArgument("bad --l1 value");
    } else if (arg == "--report") {
      opt.report = true;
    } else if (arg == "--timeline") {
      opt.timeline = true;
    } else if (arg == "--energy") {
      opt.energy = true;
    } else if (arg == "--tuned-cpu") {
      opt.tuned_cpu = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return opt;
}

Result<Graph> LoadNetwork(const CliOptions& opt,
                          models::PrecisionPolicy policy) {
  if (!opt.graph_path.empty()) {
    return LoadGraph(opt.graph_path);
  }
  return models::BuildByName(opt.model, policy);
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "htvmc: %s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const CliOptions opt = *parsed;
  if (opt.list_models) {
    std::printf("registered models:\n%s", models::DescribeRegistry().c_str());
    return 0;
  }
  if (opt.help || (opt.model.empty() && opt.graph_path.empty())) {
    PrintUsage();
    return opt.help ? 0 : 2;
  }

  compiler::CompileOptions options;
  models::PrecisionPolicy policy = models::PrecisionPolicy::kMixed;
  if (opt.config == "tvm") {
    options = compiler::CompileOptions::PlainTvm();
    policy = models::PrecisionPolicy::kInt8;
  } else if (opt.config == "digital") {
    options = compiler::CompileOptions::DigitalOnly();
    policy = models::PrecisionPolicy::kInt8;
  } else if (opt.config == "analog") {
    options = compiler::CompileOptions::AnalogOnly();
    policy = models::PrecisionPolicy::kTernary;
  } else if (opt.config == "mixed") {
    policy = models::PrecisionPolicy::kMixed;
  } else {
    std::fprintf(stderr, "htvmc: unknown --config '%s'\n",
                 opt.config.c_str());
    return 2;
  }
  if (!opt.soc.empty()) {
    // Validated at parse time; Find again to fetch the full description.
    options.soc = *hw::FindSoc(opt.soc);
  }
  options.dispatch.enable_tuned_cpu_library = opt.tuned_cpu;
  options.instrument.dump_ir_dir = opt.dump_ir_dir;
  options.instrument.dump_ir_filter = opt.dump_ir_filter;
  if (opt.l1_kb > 0) options.tiler.l1_budget_bytes = opt.l1_kb * 1024;
  options.compile_threads = opt.compile_threads;
  if (!opt.schedule_search.empty()) {
    // Validated at parse time.
    options.schedule_search.kind =
        *dory::ParseScheduleSearchKind(opt.schedule_search);
  }
  dory::ScheduleSearchStats::Global().Reset();
  if (!opt.cache_dir.empty()) {
    cache::ConfigureGlobalArtifactCache({.dir = opt.cache_dir});
    options.cache = &cache::GlobalArtifactCache();
  }

  auto network = LoadNetwork(opt, policy);
  if (!network.ok()) {
    std::fprintf(stderr, "htvmc: %s\n", network.status().ToString().c_str());
    return 1;
  }

  auto artifact = compiler::HtvmCompiler{options}.Compile(*network);
  if (!artifact.ok()) {
    std::fprintf(stderr, "htvmc: compile failed: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }
  if (!opt.cache_dir.empty()) {
    const cache::CacheStats cs = cache::GlobalArtifactCache().stats();
    std::printf("cache: %s (%s)\n",
                cs.hits > 0 ? "hit" : "miss", opt.cache_dir.c_str());
  }

  if (options.schedule_search.kind != dory::ScheduleSearchKind::kHeuristic) {
    const dory::ScheduleSearchStats& ss = dory::ScheduleSearchStats::Global();
    std::printf(
        "schedule-search: kind=%s evaluations=%lld (cost-model %lld, "
        "simulator %lld) memo-hits=%lld layers=%lld\n",
        dory::ScheduleSearchKindName(options.schedule_search.kind),
        static_cast<long long>(ss.TotalEvals()),
        static_cast<long long>(ss.cost_model_evals()),
        static_cast<long long>(ss.simulator_evals()),
        static_cast<long long>(ss.memo_hits()),
        static_cast<long long>(ss.layers_searched()));
  }
  if (!artifact->plan.empty()) {
    std::printf("graph-plan: units=%zu fused=%lld cpu=%lld\n",
                artifact->plan.decisions.size(),
                static_cast<long long>(artifact->plan.FusedPairs()),
                static_cast<long long>(artifact->plan.CpuDecisions()));
  }

  std::printf("%zu kernels | %.3f ms full (%.3f ms peak) | %s | L2 %s\n",
              artifact->kernels.size(), artifact->LatencyMs(),
              artifact->PeakLatencyMs(), artifact->size.ToString().c_str(),
              artifact->memory_plan.fits ? "fits" : "OUT OF MEMORY");
  if (!opt.soc.empty()) {
    std::printf("soc: %s\n", artifact->soc_name.c_str());
  }

  if (!opt.artifact_path.empty()) {
    vm::HabMeta meta;
    meta.model_name = opt.model.empty() ? opt.graph_path : opt.model;
    meta.producer = "htvmc";
    if (auto status = vm::SaveHab(*artifact, meta, opt.artifact_path);
        !status.ok()) {
      std::fprintf(stderr, "htvmc: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote artifact %s\n", opt.artifact_path.c_str());
  }
  if (!opt.run_outputs.empty()) {
    const std::vector<Tensor> inputs =
        vm::SyntheticInputs(*artifact, opt.input_seed);
    const runtime::Executor executor(&*artifact);
    auto result = executor.Run(inputs);
    if (!result.ok()) {
      std::fprintf(stderr, "htvmc: run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (auto status = vm::SaveTensors(result->outputs, opt.run_outputs);
        !status.ok()) {
      std::fprintf(stderr, "htvmc: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("ran %zu outputs (seed %llu) -> %s\n",
                result->outputs.size(),
                static_cast<unsigned long long>(opt.input_seed),
                opt.run_outputs.c_str());
  }
  if (!opt.dump_ir_dir.empty()) {
    std::printf("dumped per-pass IR to %s\n", opt.dump_ir_dir.c_str());
  }
  if (opt.print_pass_times) {
    std::printf("\npass timeline:\n%s",
                compiler::PassTimelineToTable(artifact->pass_timeline).c_str());
  }
  if (opt.report) {
    std::printf("\n%s", artifact->Profile().ToTable().c_str());
    if (!artifact->dispatch_log.empty()) {
      std::printf("\ndispatch decisions:\n");
      for (const auto& d : artifact->dispatch_log) {
        std::printf("  %-14s %-38s -> %-8s %s\n", d.pattern.c_str(),
                    d.layer.c_str(), d.target.c_str(), d.reason.c_str());
      }
    }
  }
  if (opt.timeline) {
    std::printf("\n%s", runtime::BuildTimeline(*artifact).Render().c_str());
  }
  if (opt.energy) {
    const auto energy = runtime::EstimateEnergy(*artifact);
    std::printf("\n%s\n", energy.ToString().c_str());
    std::printf("effective efficiency: %.2f TOPS/W\n",
                energy.TopsPerWatt(artifact->Profile().TotalMacs(),
                                   artifact->hw_config.freq_mhz));
  }
  if (!opt.dot_path.empty()) {
    std::ofstream out(opt.dot_path);
    out << GraphToDot(artifact->kernel_graph);
    std::printf("wrote %s\n", opt.dot_path.c_str());
  }
  if (!opt.emit_dir.empty()) {
    auto emitted = compiler::EmitArtifactC(
        *artifact, opt.model.empty() ? "network" : opt.model);
    if (!emitted.ok()) {
      std::fprintf(stderr, "htvmc: emission failed: %s\n",
                   emitted.status().ToString().c_str());
      return 1;
    }
    ::mkdir(opt.emit_dir.c_str(), 0755);
    if (auto status = emitted->WriteTo(opt.emit_dir); !status.ok()) {
      std::fprintf(stderr, "htvmc: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("emitted %zu files to %s\n", emitted->files.size(),
                opt.emit_dir.c_str());
  }
  return 0;
}

// Always-on keyword spotting: the end-to-end TinyML scenario the paper's
// introduction motivates (near-sensor processing under latency and energy
// budgets). Streams MFCC frames through DS-CNN on three DIANA
// configurations and reports the real-time margin and battery-life
// implications of each.
//
//   $ ./examples/kws_streaming [num_frames]
#include <cstdio>
#include <cstdlib>

#include "compiler/pipeline.hpp"
#include "models/mlperf_tiny.hpp"
#include "runtime/energy.hpp"
#include "runtime/executor.hpp"

using namespace htvm;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 16;
  // KWS runs on 1 s windows with 0.5 s hop: one inference every 500 ms.
  const double frame_period_ms = 500.0;

  struct Config {
    const char* name;
    models::PrecisionPolicy policy;
    compiler::CompileOptions options;
  };
  const Config configs[] = {
      {"cpu-only (plain TVM)", models::PrecisionPolicy::kInt8,
       compiler::CompileOptions::PlainTvm()},
      {"digital accelerator", models::PrecisionPolicy::kInt8,
       compiler::CompileOptions::DigitalOnly()},
      {"mixed (both accelerators)", models::PrecisionPolicy::kMixed,
       compiler::CompileOptions{}},
  };

  std::printf("DS-CNN keyword spotting, %d frames at one inference per %.0f "
              "ms:\n\n",
              frames, frame_period_ms);
  for (const Config& cfg : configs) {
    Graph net = models::BuildDsCnn(cfg.policy);
    auto artifact = compiler::HtvmCompiler{cfg.options}.Compile(net);
    if (!artifact.ok()) {
      std::printf("%-28s compile failed: %s\n", cfg.name,
                  artifact.status().ToString().c_str());
      continue;
    }
    runtime::Executor executor(&*artifact);
    Rng rng(42);
    int detections = 0;
    double total_ms = 0.0;
    for (int f = 0; f < frames; ++f) {
      const Tensor mfcc =
          Tensor::Random(Shape{1, 1, 49, 10}, DType::kInt8, rng);
      auto result = executor.Run(std::vector<Tensor>{mfcc});
      if (!result.ok()) {
        std::printf("%-28s frame %d failed: %s\n", cfg.name, f,
                    result.status().ToString().c_str());
        break;
      }
      total_ms += result->latency_ms;
      // "Detection": argmax over the 12 keyword scores.
      const Tensor& scores = result->outputs[0];
      i64 best = 0;
      for (i64 k = 1; k < scores.NumElements(); ++k) {
        if (scores.GetFlat(k) > scores.GetFlat(best)) best = k;
      }
      detections += best != 0;
    }
    const double per_frame = total_ms / frames;
    const auto energy = runtime::EstimateEnergy(*artifact);
    const double duty = per_frame / frame_period_ms;
    std::printf(
        "%-28s %7.2f ms/frame  duty %5.1f%%  %8.1f uJ/frame  (%d argmax "
        "hits)\n",
        cfg.name, per_frame, 100.0 * duty, energy.TotalUj(), detections);
  }
  std::printf(
      "\nduty = compute time / frame period: the headroom the accelerators "
      "buy for\nsleep states or bigger models — the paper's Sec. I energy "
      "motivation.\n");
  return 0;
}

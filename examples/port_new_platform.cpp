// Porting HTVM to a new platform (Sec. III-C: "the user has to provide
// only three components: hardware specifications, heuristics, and the
// platform-specific instructions").
//
// In this reproduction those three components are (1) the hw::DianaConfig
// fields, (2) the TilerOptions heuristic weights, and (3) the simulator's
// driver cost models. This example retargets the same network to a
// hypothetical "TinyEdge" SoC — an 8x8 PE array, 64 kB of L1, 32 kB of
// accelerator weight memory, and no analog core — by editing configuration
// only, and compares the resulting deployments.
//
//   $ ./examples/port_new_platform
#include <cstdio>

#include "compiler/pipeline.hpp"
#include "models/mlperf_tiny.hpp"
#include "runtime/timeline.hpp"

using namespace htvm;

namespace {

hw::DianaConfig TinyEdgeConfig() {
  hw::DianaConfig cfg;                 // start from DIANA defaults
  cfg.l1_bytes = 64 * 1024;            // quarter of DIANA's shared L1
  cfg.l2_bytes = 256 * 1024;
  cfg.digital.pe_rows = 8;             // 8x8 array: 64 MAC/cycle peak
  cfg.digital.pe_cols = 8;
  cfg.digital.weight_mem_bytes = 32 * 1024;
  cfg.freq_mhz = 200.0;
  return cfg;
}

void Deploy(const char* tag, const compiler::CompileOptions& options) {
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto artifact = compiler::HtvmCompiler{options}.Compile(net);
  if (!artifact.ok()) {
    std::printf("%-10s compile failed: %s\n", tag,
                artifact.status().ToString().c_str());
    return;
  }
  i64 tiles = 0;
  for (const auto& k : artifact->kernels) tiles += k.perf.tiles;
  std::printf("%-10s %8.3f ms  %8.1f kB binary  %6lld tiles  arena %5.1f kB\n",
              tag, artifact->LatencyMs(),
              static_cast<double>(artifact->size.Total()) / 1024.0,
              static_cast<long long>(tiles),
              static_cast<double>(artifact->memory_plan.arena_bytes) / 1024.0);
}

}  // namespace

int main() {
  std::printf("ResNet-8 deployed to two platforms by configuration only:\n\n");

  compiler::CompileOptions diana = compiler::CompileOptions::DigitalOnly();
  Deploy("DIANA", diana);

  compiler::CompileOptions tinyedge = compiler::CompileOptions::DigitalOnly();
  tinyedge.soc.name = "tinyedge";
  tinyedge.soc.config = TinyEdgeConfig();
  Deploy("TinyEdge", tinyedge);

  std::printf(
      "\nTinyEdge pays for the smaller array (lower peak), the smaller L1 "
      "(more tiles)\nand the smaller weight memory (more weight DMA) — all "
      "consequences of the\nconfig, with no compiler changes.\n");

  // The tiler's PE-alignment heuristics follow the configured array size:
  // on TinyEdge the preferred channel tiles are multiples of 8, not 16.
  Graph net = models::BuildResNet8(models::PrecisionPolicy::kInt8);
  auto art = compiler::HtvmCompiler{tinyedge}.Compile(net);
  if (art.ok()) {
    std::printf("\nTinyEdge timeline:\n%s",
                runtime::BuildTimeline(*art).Render(72).c_str());
  }
  return 0;
}

// Quickstart: build a small quantized CNN, compile it with HTVM for DIANA,
// run it on the simulator, and inspect latency, binary size and the memory
// schedule.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "compiler/pipeline.hpp"
#include "ir/builder.hpp"
#include "runtime/executor.hpp"
#include "runtime/verify.hpp"

using namespace htvm;

int main() {
  // 1. Build a quantized network with the graph builder. Each ConvBlock
  //    emits the Conv2D -> BiasAdd -> right_shift -> clip -> cast [-> clip]
  //    chain the accelerator pattern matcher looks for (paper Listing 1).
  GraphBuilder b(/*seed=*/42);
  NodeId x = b.Input("image", Shape{1, 3, 32, 32});
  ConvSpec conv1;
  conv1.out_channels = 16;
  conv1 = WithSamePadding(conv1, 32, 32);
  x = b.ConvBlock(x, conv1, "conv1");
  ConvSpec conv2;
  conv2.out_channels = 32;
  conv2.stride_h = conv2.stride_w = 2;
  conv2 = WithSamePadding(conv2, 32, 32);
  x = b.ConvBlock(x, conv2, "conv2");
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.DenseBlock(x, 10, /*relu=*/false, /*shift=*/6, DType::kInt8, "fc");
  x = b.Softmax(x);
  Graph net = b.Finish(x);

  // 2. Compile. Default options enable both DIANA accelerators; the
  //    dispatcher routes by weight bit-width and the DORY backend plans
  //    tiling + DMA for every offloaded layer.
  compiler::HtvmCompiler compiler{compiler::CompileOptions{}};
  auto artifact = compiler.Compile(net);
  if (!artifact.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }

  std::printf("kernels:\n");
  for (const auto& k : artifact->kernels) {
    std::printf("  %-20s -> %-8s (%lld tiles, %lld MACs)\n", k.name.c_str(),
                k.target.c_str(), static_cast<long long>(k.perf.tiles),
                static_cast<long long>(k.perf.macs));
  }
  std::printf("binary: %s\n", artifact->size.ToString().c_str());
  std::printf("L2 plan: arena %lld B, total %lld B, fits=%s\n",
              static_cast<long long>(artifact->memory_plan.arena_bytes),
              static_cast<long long>(artifact->memory_plan.total_l2_bytes),
              artifact->memory_plan.fits ? "yes" : "no");

  // 3. Run on the simulator.
  Rng rng(7);
  const Tensor input = Tensor::Random(Shape{1, 3, 32, 32}, DType::kInt8, rng);
  runtime::Executor executor(&*artifact);
  auto result = executor.Run(std::vector<Tensor>{input});
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("latency: %.3f ms (%lld cycles @260 MHz)\n", result->latency_ms,
              static_cast<long long>(result->total_cycles));

  // 4. Verify the deployment against the pure reference interpreter.
  auto verify =
      runtime::VerifyArtifact(*artifact, net, std::vector<Tensor>{input});
  if (verify.ok()) {
    std::printf("verification: %s (%lld/%lld elements differ)\n",
                verify->bit_exact ? "bit-exact" : "approximate",
                static_cast<long long>(verify->mismatched_elements),
                static_cast<long long>(verify->total_elements));
  }
  return 0;
}

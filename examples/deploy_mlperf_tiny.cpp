// Deploy an MLPerf(TM) Tiny network to a chosen DIANA configuration and
// print the per-kernel profile — the workflow of the paper's Sec. IV-C.
//
//   $ ./examples/deploy_mlperf_tiny [dscnn|mobilenet|resnet|toyadmos]
//                                   [tvm|digital|analog|mixed]
#include <cstdio>
#include <cstring>

#include "compiler/pipeline.hpp"
#include "models/mlperf_tiny.hpp"
#include "runtime/executor.hpp"
#include "runtime/timeline.hpp"
#include "support/string_utils.hpp"

using namespace htvm;

int main(int argc, char** argv) {
  const char* model_name = argc > 1 ? argv[1] : "resnet";
  const char* config_name = argc > 2 ? argv[2] : "mixed";

  Graph (*build)(models::PrecisionPolicy) = nullptr;
  Shape input_shape;
  if (!std::strcmp(model_name, "dscnn")) {
    build = &models::BuildDsCnn;
    input_shape = Shape{1, 1, 49, 10};
  } else if (!std::strcmp(model_name, "mobilenet")) {
    build = &models::BuildMobileNetV1;
    input_shape = Shape{1, 3, 96, 96};
  } else if (!std::strcmp(model_name, "resnet")) {
    build = &models::BuildResNet8;
    input_shape = Shape{1, 3, 32, 32};
  } else if (!std::strcmp(model_name, "toyadmos")) {
    build = &models::BuildToyAdmosDae;
    input_shape = Shape{1, 640};
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", model_name);
    return 1;
  }

  compiler::CompileOptions options;
  models::PrecisionPolicy policy = models::PrecisionPolicy::kInt8;
  if (!std::strcmp(config_name, "tvm")) {
    options = compiler::CompileOptions::PlainTvm();
  } else if (!std::strcmp(config_name, "digital")) {
    options = compiler::CompileOptions::DigitalOnly();
  } else if (!std::strcmp(config_name, "analog")) {
    options = compiler::CompileOptions::AnalogOnly();
    policy = models::PrecisionPolicy::kTernary;
  } else if (!std::strcmp(config_name, "mixed")) {
    policy = models::PrecisionPolicy::kMixed;
  } else {
    std::fprintf(stderr, "unknown config '%s'\n", config_name);
    return 1;
  }

  const Graph net = build(policy);
  auto artifact = compiler::HtvmCompiler{options}.Compile(net);
  if (!artifact.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }

  std::printf("%s on DIANA (%s):\n", model_name, config_name);
  std::printf("%s", artifact->Profile().ToTable().c_str());
  std::printf("binary: %s\n", artifact->size.ToString().c_str());
  std::printf("L2: arena %s + image %s -> %s (capacity 512.0 kB)\n",
              HumanBytes(artifact->memory_plan.arena_bytes).c_str(),
              HumanBytes(artifact->size.Total()).c_str(),
              artifact->memory_plan.fits ? "fits" : "OUT OF MEMORY");

  Rng rng(3);
  const Tensor input = Tensor::Random(input_shape, DType::kInt8, rng);
  runtime::Executor executor(&*artifact);
  auto result = executor.Run(std::vector<Tensor>{input});
  if (!result.ok()) {
    std::printf("execution refused: %s\n", result.status().ToString().c_str());
    return 0;  // the OoM row of Table I behaves exactly like this
  }
  std::printf("end-to-end: %.3f ms full, %.3f ms peak\n", result->latency_ms,
              artifact->PeakLatencyMs());
  // Fig. 2: the sequential kernel timeline across the three engines.
  std::printf("\n%s", runtime::BuildTimeline(*artifact).Render(72).c_str());
  return 0;
}

// Deploying a custom mixed-precision network: shows how weight precision
// drives the accelerator-aware dispatcher (int8 -> digital, ternary ->
// analog, unsupported -> CPU) and how to inspect the partitioning the
// compiler chose — the paper's Sec. III-A flow from a user's perspective.
//
//   $ ./examples/custom_network
#include <cstdio>

#include "compiler/pipeline.hpp"
#include "ir/builder.hpp"
#include "runtime/executor.hpp"

using namespace htvm;

int main() {
  // A residual block with deliberately mixed precision:
  //   conv1  int8     -> digital accelerator
  //   conv2  ternary  -> analog accelerator
  //   dwconv int8     -> digital (analog cannot run depthwise)
  //   softmax         -> CPU (neither accelerator supports it)
  GraphBuilder b(/*seed=*/99);
  NodeId x = b.Input("in", Shape{1, 32, 24, 24});

  ConvSpec conv1;
  conv1.out_channels = 32;
  conv1.weight_dtype = DType::kInt8;
  conv1 = WithSamePadding(conv1, 24, 24);
  NodeId y = b.ConvBlock(x, conv1, "conv1");

  ConvSpec conv2;
  conv2.out_channels = 32;
  conv2.weight_dtype = DType::kTernary;  // routes to the analog IMC macro
  conv2.relu = false;
  conv2 = WithSamePadding(conv2, 24, 24);
  y = b.ConvBlock(y, conv2, "conv2");

  NodeId res = b.AddBlock(x, y, /*relu=*/true, /*shift=*/1);

  ConvSpec dw;
  dw.depthwise = true;
  dw.weight_dtype = DType::kInt8;
  dw = WithSamePadding(dw, 24, 24);
  res = b.ConvBlock(res, dw, "dw");

  res = b.GlobalAvgPool(res);
  res = b.Flatten(res);
  res = b.DenseBlock(res, 10, /*relu=*/false, 6, DType::kInt8, "fc");
  res = b.Softmax(res);
  Graph net = b.Finish(res);

  auto artifact =
      compiler::HtvmCompiler{compiler::CompileOptions{}}.Compile(net);
  if (!artifact.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }

  std::printf("dispatch decisions:\n");
  for (const auto& k : artifact->kernels) {
    std::printf("  %-20s -> %s\n", k.name.c_str(), k.target.c_str());
  }
  std::printf("\ndispatch rationale (compile-time report):\n");
  for (const auto& d : artifact->dispatch_log) {
    std::printf("  %-14s %-36s -> %-8s %s\n", d.pattern.c_str(),
                d.layer.c_str(), d.target.c_str(), d.reason.c_str());
  }

  Rng rng(1);
  const Tensor input = Tensor::Random(Shape{1, 32, 24, 24}, DType::kInt8, rng);
  runtime::Executor executor(&*artifact);
  auto result = executor.Run(std::vector<Tensor>{input});
  HTVM_CHECK(result.ok());
  std::printf("\nlatency %.3f ms; per-target cycles: cpu=%lld digital=%lld "
              "analog=%lld\n",
              result->latency_ms,
              static_cast<long long>(result->profile.FullCyclesOn("cpu")),
              static_cast<long long>(result->profile.FullCyclesOn("digital")),
              static_cast<long long>(result->profile.FullCyclesOn("analog")));

  // Re-compile with the analog core disabled: the ternary conv has nowhere
  // to go but the CPU path.
  auto digital_only = compiler::HtvmCompiler{
      compiler::CompileOptions::DigitalOnly()}.Compile(net);
  HTVM_CHECK(digital_only.ok());
  std::printf("\nwith the analog core disabled:\n");
  for (const auto& k : digital_only->kernels) {
    std::printf("  %-20s -> %s\n", k.name.c_str(), k.target.c_str());
  }
  return 0;
}

// Interactive exploration of DORY's hardware-aware tiling: give a layer
// geometry and an L1 budget, see the tile solution and cycle breakdown for
// each heuristic variant (the Fig. 4 experiment for one point).
//
//   $ ./examples/tiling_explorer <C> <K> <H> <W> <kernel> <stride> <L1 kB>
//   $ ./examples/tiling_explorer 64 64 32 32 3 1 16
#include <cstdio>
#include <cstdlib>

#include "dory/schedule.hpp"
#include "models/layer_zoo.hpp"

using namespace htvm;

namespace {

void ShowVariant(const char* name, const dory::AccelLayerSpec& spec,
                 const dory::TilerOptions& options) {
  const hw::DianaConfig cfg;
  auto sched =
      dory::BuildSchedule(spec, cfg, dory::AccelTarget::kDigital, options);
  if (!sched.ok()) {
    std::printf("%-10s infeasible: %s\n", name,
                sched.status().ToString().c_str());
    return;
  }
  const auto& sol = sched->solution;
  std::printf(
      "%-10s tile c=%-3lld k=%-3lld oy=%-3lld ox=%-3lld (in %lldx%lld) "
      "x%lld tiles%s\n",
      name, static_cast<long long>(sol.c_t), static_cast<long long>(sol.k_t),
      static_cast<long long>(sol.oy_t), static_cast<long long>(sol.ox_t),
      static_cast<long long>(sol.iy_t), static_cast<long long>(sol.ix_t),
      static_cast<long long>(sched->steps.size()),
      sol.needs_tiling ? "" : " (fits untiled)");
  std::printf(
      "           compute %lld + wdma %lld + exposed-dma %lld + overhead "
      "%lld = %lld cycles (%.3f ms, %.1f MAC/cyc)\n",
      static_cast<long long>(sched->compute_cycles),
      static_cast<long long>(sched->weight_dma_cycles),
      static_cast<long long>(sched->exposed_act_cycles),
      static_cast<long long>(sched->overhead_cycles),
      static_cast<long long>(sched->full_cycles),
      cfg.CyclesToMs(sched->full_cycles),
      static_cast<double>(sched->macs) /
          static_cast<double>(sched->full_cycles));
}

}  // namespace

int main(int argc, char** argv) {
  models::ConvLayerParams p;
  p.c = argc > 1 ? std::atoll(argv[1]) : 64;
  p.k = argc > 2 ? std::atoll(argv[2]) : 64;
  p.iy = argc > 3 ? std::atoll(argv[3]) : 32;
  p.ix = argc > 4 ? std::atoll(argv[4]) : 32;
  p.kh = p.kw = argc > 5 ? std::atoll(argv[5]) : 3;
  p.stride = argc > 6 ? std::atoll(argv[6]) : 1;
  const i64 budget_kb = argc > 7 ? std::atoll(argv[7]) : 16;

  const auto spec = models::MakeConvSpec(p);
  std::printf(
      "conv C=%lld K=%lld %lldx%lld k%lldx%lld s%lld: %.2f MMACs, L1 budget "
      "%lld kB\n\n",
      static_cast<long long>(p.c), static_cast<long long>(p.k),
      static_cast<long long>(p.iy), static_cast<long long>(p.ix),
      static_cast<long long>(p.kh), static_cast<long long>(p.kw),
      static_cast<long long>(p.stride),
      static_cast<double>(spec.Macs()) / 1e6,
      static_cast<long long>(budget_kb));

  dory::TilerOptions none;
  none.l1_budget_bytes = budget_kb * 1024;
  none.enable_pe_heuristics = false;
  none.enable_dma_heuristic = false;
  dory::TilerOptions pe = none;
  pe.enable_pe_heuristics = true;
  dory::TilerOptions both = pe;
  both.enable_dma_heuristic = true;

  ShowVariant("none", spec, none);
  ShowVariant("H_pe", spec, pe);
  ShowVariant("H_pe+dma", spec, both);
  return 0;
}

// Exports a deployable C artifact — what the real HTVM hands to the
// XpulpV2 GCC toolchain: generated kernels (DORY tile loops + DMA + driver
// calls, fused CPU loop nests), weights in the deployed layouts, and the
// network function running the kernel sequence against the statically
// scheduled L2 arena.
//
//   $ ./examples/export_c_code [output-dir] [model] [config]
//   $ ./examples/export_c_code /tmp/resnet_deploy resnet mixed
//   $ cc -c /tmp/resnet_deploy/resnet.c   # compiles standalone
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

#include "compiler/emit.hpp"
#include "compiler/pipeline.hpp"
#include "models/mlperf_tiny.hpp"

using namespace htvm;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "./htvm_out";
  const char* model_name = argc > 2 ? argv[2] : "resnet";
  const char* config_name = argc > 3 ? argv[3] : "mixed";

  Graph (*build)(models::PrecisionPolicy) = &models::BuildResNet8;
  if (!std::strcmp(model_name, "dscnn")) build = &models::BuildDsCnn;
  if (!std::strcmp(model_name, "mobilenet")) build = &models::BuildMobileNetV1;
  if (!std::strcmp(model_name, "toyadmos")) build = &models::BuildToyAdmosDae;

  compiler::CompileOptions options;
  models::PrecisionPolicy policy = models::PrecisionPolicy::kMixed;
  if (!std::strcmp(config_name, "tvm")) {
    options = compiler::CompileOptions::PlainTvm();
    policy = models::PrecisionPolicy::kInt8;
  } else if (!std::strcmp(config_name, "digital")) {
    options = compiler::CompileOptions::DigitalOnly();
    policy = models::PrecisionPolicy::kInt8;
  } else if (!std::strcmp(config_name, "analog")) {
    options = compiler::CompileOptions::AnalogOnly();
    policy = models::PrecisionPolicy::kTernary;
  }

  auto artifact = compiler::HtvmCompiler{options}.Compile(build(policy));
  if (!artifact.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }
  auto emitted = compiler::EmitArtifactC(*artifact, model_name);
  if (!emitted.ok()) {
    std::fprintf(stderr, "emission failed: %s\n",
                 emitted.status().ToString().c_str());
    return 1;
  }
  ::mkdir(dir.c_str(), 0755);
  if (auto status = emitted->WriteTo(dir); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu files to %s:\n", emitted->files.size(), dir.c_str());
  for (const auto& [name, contents] : emitted->files) {
    std::printf("  %-18s %zu bytes\n", name.c_str(), contents.size());
  }
  std::printf("\ncompile with: cc -c %s/%s.c\n", dir.c_str(), model_name);
  return 0;
}
